//! The [`Runtime`] abstraction: one interface over both execution
//! substrates.
//!
//! Protocol code is written against [`Actor`]; *experiment* code — the
//! scenario runner, the suite engine, benches, tests — is written against
//! `Runtime`, so the same `Scenario` drives either the deterministic
//! discrete-event simulator ([`crate::sim::Simulation`]) or the OS-thread
//! runtime ([`crate::threaded::ThreadedRuntime`]) without caring which.
//!
//! The contract has three phases:
//!
//! 1. **registration** — [`Runtime::add_actor`] before the run starts;
//! 2. **execution** — [`Runtime::run_until_stopped`] drives events until
//!    every actor halts, the caller's stop condition fires, or the
//!    runtime's own bound (simulated horizon / wall timeout) is hit;
//! 3. **inspection** — [`Runtime::actor_as`] downcasts an actor's final
//!    state, [`Runtime::stats`] exposes the [`NetStats`] of the run.
//!
//! The stop condition is a plain `FnMut() -> bool` evaluated on the
//! driving thread between events. Actors signal progress to it through
//! out-of-band state such as [`crate::threaded::Board`] — that works
//! identically on both substrates, unlike direct actor inspection, which a
//! threaded runtime cannot offer mid-run (the actors are owned by their
//! threads until shutdown).

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
use std::sync::Arc;

use cupft_graph::ProcessId;
use cupft_obs::{ObsReport, Recorder};
use cupft_wire::{Decode, Encode, Reader, WireError};

use crate::actor::Actor;
use crate::stage::Preflight;
use crate::stats::NetStats;
use crate::tamper::Tamper;
use crate::Time;

/// An opaque peer address: where a [`Runtime`] can reach a process.
///
/// The channel substrates (simulator, threaded runtime) address actors by
/// [`ProcessId`] alone — every registered actor is [`PeerAddr::Local`].
/// The socket runtime ([`crate::socket::SocketRuntime`]) additionally
/// reaches processes hosted by *other* OS processes over TCP —
/// [`PeerAddr::Tcp`]. Experiment code holds `PeerAddr`s without caring
/// which substrate produced them; only the runtime that minted an address
/// can interpret it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PeerAddr {
    /// The peer is an actor registered in this runtime instance; the ID is
    /// the complete address (channel substrates).
    Local(ProcessId),
    /// The peer is reachable over TCP at this socket address (socket
    /// runtime).
    Tcp(SocketAddr),
}

impl std::fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerAddr::Local(id) => write!(f, "local:{id}"),
            PeerAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// Wire form: `tag:u8` (0 = Local, 1 = Tcp/v4, 2 = Tcp/v6) followed by the
/// raw process ID, or octets ‖ `port:u16`. Lets a driver ship a peer
/// address book to node processes in the same framed vocabulary as
/// everything else.
impl Encode for PeerAddr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PeerAddr::Local(id) => {
                out.push(0);
                id.encode(out);
            }
            PeerAddr::Tcp(addr) => match addr.ip() {
                IpAddr::V4(ip) => {
                    out.push(1);
                    out.extend_from_slice(&ip.octets());
                    addr.port().encode(out);
                }
                IpAddr::V6(ip) => {
                    out.push(2);
                    out.extend_from_slice(&ip.octets());
                    addr.port().encode(out);
                }
            },
        }
    }
}

impl Decode for PeerAddr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(PeerAddr::Local(ProcessId::decode(r)?)),
            1 => {
                let mut octets = [0u8; 4];
                octets.copy_from_slice(r.take(4)?);
                let port = r.u16()?;
                Ok(PeerAddr::Tcp(SocketAddr::new(
                    IpAddr::V4(Ipv4Addr::from(octets)),
                    port,
                )))
            }
            2 => {
                let mut octets = [0u8; 16];
                octets.copy_from_slice(r.take(16)?);
                let port = r.u16()?;
                Ok(PeerAddr::Tcp(SocketAddr::new(
                    IpAddr::V6(Ipv6Addr::from(octets)),
                    port,
                )))
            }
            tag => Err(WireError::BadTag {
                ty: "PeerAddr",
                tag,
            }),
        }
    }
}

/// Outcome of one [`Runtime`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeReport {
    /// Whether every actor halted before the runtime's bound.
    pub all_halted: bool,
    /// Whether the caller's stop condition ended the run.
    pub stopped: bool,
    /// When the run ended: simulated ticks for the simulator, elapsed
    /// milliseconds for the threaded runtime.
    pub end_time: Time,
    /// Events processed (deliveries + timers for the simulator;
    /// router-observed deliveries for the threaded runtime).
    pub events: u64,
    /// Network statistics of the run.
    pub stats: NetStats,
    /// Observability snapshot, present when a recorder was installed via
    /// [`Runtime::set_recorder`]. `None` (the unobserved default) keeps
    /// report equality comparisons exactly as before.
    pub obs: Option<ObsReport>,
}

/// A substrate that can execute a set of [`Actor`]s to completion.
///
/// Implemented by [`crate::sim::Simulation`] (deterministic, simulated
/// time) and [`crate::threaded::ThreadedRuntime`] (real threads, wall-clock
/// time). See the [module docs](self) for the phase contract.
pub trait Runtime<M: 'static> {
    /// A short human-readable substrate name (`"sim"` / `"threaded"`),
    /// used in suite reports and test diagnostics.
    fn name(&self) -> &'static str;

    /// Registers an actor. Must be called before the first run.
    ///
    /// # Panics
    ///
    /// Implementations panic if an actor with the same ID is already
    /// registered.
    fn add_actor(&mut self, actor: Box<dyn Actor<M>>);

    /// Installs a message-interception layer consulted once per send (see
    /// [`crate::tamper`]). Must be called before the run starts; installing
    /// a second tamper replaces the first. Both substrates honor the same
    /// trait, so an adversarial schedule is expressed once and runs on
    /// either.
    fn set_tamper(&mut self, tamper: Box<dyn Tamper<M>>);

    /// Installs a stateless pre-delivery stage (see [`crate::stage`]).
    /// Must be called before the run starts; installing a second
    /// preflight replaces the first. Substrates that support staging
    /// override this — the default quietly ignores the stage, which is
    /// always correct: a [`Preflight`] may run zero times per message by
    /// contract.
    fn set_preflight(&mut self, preflight: Arc<dyn Preflight<M>>) {
        let _ = preflight;
    }

    /// Installs an observability recorder (see [`cupft_obs`]). Must be
    /// called before the run starts; installing a second recorder
    /// replaces the first. Substrates that support observation override
    /// this — the default quietly ignores the recorder, which is always
    /// correct: observation is best-effort by contract and must never
    /// change protocol behavior.
    fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        let _ = recorder;
    }

    /// Registers a peer hosted *outside* this runtime instance, reachable
    /// at `addr`. Must be called before the run starts.
    ///
    /// The channel substrates cannot host external peers: the default
    /// accepts the (redundant) registration of a local address for an
    /// already-registered actor and panics on anything else, so a driver
    /// that wires a distributed topology against a channel substrate fails
    /// loudly instead of silently black-holing sends.
    fn register_peer(&mut self, id: ProcessId, addr: PeerAddr) {
        match addr {
            PeerAddr::Local(peer) if peer == id && self.actor_ids().contains(&id) => {}
            _ => panic!(
                "{} runtime cannot register external peer {id} at {addr}",
                self.name()
            ),
        }
    }

    /// The address at which this runtime reaches `id`, or `None` if the
    /// process is unknown. For channel substrates every registered actor
    /// is [`PeerAddr::Local`]; the socket runtime reports TCP addresses
    /// for both its own actors (its listener) and registered remote peers.
    fn addr_of(&self, id: ProcessId) -> Option<PeerAddr> {
        self.actor_ids()
            .contains(&id)
            .then_some(PeerAddr::Local(id))
    }

    /// Drives the system until every actor halts, `stop` returns `true`,
    /// or the runtime's own bound (simulated horizon / wall timeout) is
    /// reached. `stop` is polled between events on the driving thread.
    ///
    /// **One run per runtime.** Portable callers must call this exactly
    /// once; what a second call does is substrate-defined (the simulator
    /// resumes its event loop under the new stop condition, the threaded
    /// runtime returns the recorded report unchanged — its actor threads
    /// are gone). Phased execution is an inherent-API feature
    /// ([`crate::sim::Simulation::run_until`]), not a trait feature.
    fn run_until_stopped(&mut self, stop: &mut dyn FnMut() -> bool) -> RuntimeReport;

    /// Drives the system with no external stop condition.
    fn run_to_completion(&mut self) -> RuntimeReport {
        self.run_until_stopped(&mut || false)
    }

    /// Statistics collected so far (final after the run returns).
    fn stats(&self) -> &NetStats;

    /// The IDs of all registered actors.
    fn actor_ids(&self) -> Vec<ProcessId>;

    /// Trait-object access to an actor's state.
    ///
    /// For the threaded runtime this is only available once the run has
    /// returned (actors live on their threads while running); the
    /// simulator allows it at any time.
    fn actor_dyn(&self, id: ProcessId) -> Option<&dyn Actor<M>>;

    /// Downcast access to an actor's concrete type (post-run state
    /// inspection — how the scenario runner reads decisions back out).
    fn actor_as<T: 'static>(&self, id: ProcessId) -> Option<&T>
    where
        Self: Sized,
    {
        self.actor_dyn(id).and_then(|a| a.as_any().downcast_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Context, Labeled};
    use crate::sim::{SimConfig, Simulation};
    use crate::threaded::{Board, ThreadedConfig, ThreadedRuntime};

    #[derive(Clone)]
    enum Msg {
        Ping,
        Pong,
    }
    impl Labeled for Msg {
        fn label(&self) -> &'static str {
            match self {
                Msg::Ping => "PING",
                Msg::Pong => "PONG",
            }
        }
    }

    struct Node {
        id: ProcessId,
        peer: ProcessId,
        initiator: bool,
        board: Board<bool>,
        got_reply: bool,
    }

    impl Actor<Msg> for Node {
        fn id(&self) -> ProcessId {
            self.id
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            if self.initiator {
                ctx.send(self.peer, Msg::Ping);
            }
        }
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<Msg>) {
            match msg {
                Msg::Ping => ctx.send(from, Msg::Pong),
                Msg::Pong => {
                    self.got_reply = true;
                    self.board.publish(self.id, true);
                    ctx.halt();
                }
            }
        }
    }

    /// The point of the trait: this driver is written once and executes on
    /// both substrates.
    fn drive<R: Runtime<Msg>>(runtime: &mut R, board: &Board<bool>) -> RuntimeReport {
        runtime.add_actor(Box::new(Node {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: true,
            board: board.clone(),
            got_reply: false,
        }));
        runtime.add_actor(Box::new(Node {
            id: ProcessId::new(2),
            peer: ProcessId::new(1),
            initiator: false,
            board: board.clone(),
            got_reply: false,
        }));
        let report = runtime.run_until_stopped(&mut || !board.is_empty());
        assert_eq!(
            runtime.actor_ids(),
            vec![ProcessId::new(1), ProcessId::new(2)]
        );
        let initiator: &Node = runtime.actor_as(ProcessId::new(1)).expect("inspectable");
        assert!(initiator.got_reply);
        assert!(runtime.actor_as::<Node>(ProcessId::new(99)).is_none());
        report
    }

    #[test]
    fn generic_driver_runs_on_simulation() {
        let board = Board::new();
        let mut sim: Simulation<Msg> = Simulation::new(SimConfig::default());
        assert_eq!(Runtime::<Msg>::name(&sim), "sim");
        let report = drive(&mut sim, &board);
        assert!(report.stopped);
        assert_eq!(report.stats.label_count("PING"), 1);
        assert_eq!(report.stats.label_count("PONG"), 1);
    }

    #[test]
    fn generic_driver_runs_on_threads() {
        let board = Board::new();
        let mut rt: ThreadedRuntime<Msg> = ThreadedRuntime::new(ThreadedConfig {
            wall_timeout: std::time::Duration::from_secs(10),
            ..ThreadedConfig::default()
        });
        assert_eq!(Runtime::<Msg>::name(&rt), "threaded");
        let report = drive(&mut rt, &board);
        assert!(report.stopped || report.all_halted);
        assert_eq!(report.stats.label_count("PING"), 1);
        assert_eq!(report.stats.label_count("PONG"), 1);
    }

    #[test]
    fn run_to_completion_default_runs_until_halt() {
        let board = Board::new();
        let mut sim: Simulation<Msg> = Simulation::new(SimConfig::default());
        sim.add_actor(Box::new(Node {
            id: ProcessId::new(1),
            peer: ProcessId::new(2),
            initiator: true,
            board: board.clone(),
            got_reply: false,
        }));
        sim.add_actor(Box::new(Node {
            id: ProcessId::new(2),
            peer: ProcessId::new(1),
            initiator: false,
            board: board.clone(),
            got_reply: false,
        }));
        let report = Runtime::run_to_completion(&mut sim);
        assert!(!report.stopped);
        // Actor 2 never halts (it only replies), so the run drains events.
        assert!(!report.all_halted);
        assert_eq!(report.stats.messages_delivered, 2);
    }
}
