//! The closed set of domain-separation labels signed values live under.
//!
//! [`crate::SignedValue`] stores its domain as a `&'static str` so that
//! signing and verification sites can use literal labels with no
//! allocation. The wire codec, however, receives domains as bytes off
//! the network — [`intern`] maps those bytes back onto the one static
//! table, which simultaneously (a) restores the `&'static str`
//! representation and (b) rejects values signed under domains this build
//! has never heard of, before any signature check runs.
//!
//! Adding a protocol message domain means adding it here; the wire
//! round-trip proptests cover every listed domain automatically.

/// Committee pre-prepare votes (leader proposals).
pub const PREPREPARE: &str = "cupft-preprepare";
/// Committee prepare votes.
pub const PREPARE: &str = "cupft-prepare";
/// Committee commit votes.
pub const COMMIT: &str = "cupft-commit";
/// Committee view-change records.
pub const VIEWCHANGE: &str = "cupft-viewchange";

/// Every domain a wire decoder will accept, in a fixed order.
pub const ALL: &[&str] = &[PREPREPARE, PREPARE, COMMIT, VIEWCHANGE];

/// Maps raw domain bytes back onto the static table, or `None` for a
/// domain this build does not know.
pub fn intern(s: &str) -> Option<&'static str> {
    ALL.iter().find(|d| **d == s).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_known_domains() {
        for d in ALL {
            let owned = d.to_string();
            let interned: &'static str = intern(&owned).expect("known domain");
            assert_eq!(interned, *d);
        }
    }

    #[test]
    fn rejects_unknown_domains() {
        assert_eq!(intern("cupft-decide"), None);
        assert_eq!(intern(""), None);
    }
}
