//! Simulated authentication substrate for the authenticated BFT-CUP and
//! BFT-CUPFT protocols.
//!
//! Section III of the paper assumes each process can *digitally sign*
//! messages, so that "Byzantine processes cannot lie about the PD of any
//! correct process, either by modifying `PDᵢ` or by creating a PD for `i`".
//! This crate provides that guarantee inside the simulation:
//!
//! * [`sha256`] — SHA-256 implemented from scratch (FIPS 180-4), validated
//!   against the NIST test vectors;
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), validated against RFC 4231 vectors;
//! * [`SigningKey`] / [`KeyRegistry`] — a MAC-based signature scheme over a
//!   simulated PKI: every process holds a private key, verification goes
//!   through the shared registry. A Byzantine *actor* in the simulation has
//!   no API to read another process's key, so forging a correct process's
//!   signature is impossible by construction — which is exactly the
//!   existential-unforgeability assumption the paper makes.
//!
//! # Example
//!
//! ```
//! use cupft_crypto::KeyRegistry;
//!
//! let mut registry = KeyRegistry::new();
//! let alice = registry.register(1);
//! let sig = alice.sign(b"hello");
//! assert!(registry.verify(1, b"hello", &sig));
//! assert!(!registry.verify(1, b"tampered", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domains;
pub mod hmac;
pub mod sha256;

mod keys;
mod signed;
mod wire;

pub use keys::{BatchVerifier, KeyRegistry, Signature, SigningKey};
pub use signed::{SignedPd, SignedValue};
