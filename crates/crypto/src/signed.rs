//! Signed protocol payloads: PD certificates and generic signed values.

use bytes::Bytes;

use crate::keys::{BatchVerifier, KeyRegistry, Signature, SigningKey};

/// Canonical encoding of a participant-detector record `⟨i, PDᵢ⟩`.
fn pd_message(author: u64, pd: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + pd.len() * 8);
    out.extend_from_slice(b"cupft-pd-v1");
    out.extend_from_slice(&author.to_be_bytes());
    out.extend_from_slice(&(pd.len() as u64).to_be_bytes());
    for &p in pd {
        out.extend_from_slice(&p.to_be_bytes());
    }
    out
}

/// A signed participant-detector record `⟨i, PDᵢ⟩ᵢ` (Algorithm 1, line 1).
///
/// The PD is stored sorted and deduplicated so the signed encoding is
/// canonical: two records with the same logical PD always verify the same
/// way.
///
/// # Example
///
/// ```
/// use cupft_crypto::{KeyRegistry, SignedPd};
///
/// let mut registry = KeyRegistry::new();
/// let key = registry.register(1);
/// let record = SignedPd::sign(&key, vec![3, 2, 2]);
/// assert_eq!(record.pd(), &[2, 3]);
/// assert!(record.verify(&registry));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignedPd {
    author: u64,
    pd: Vec<u64>,
    signature: Signature,
}

impl SignedPd {
    /// Signs `pd` (sorted + deduplicated) as `key`'s participant detector
    /// output.
    pub fn sign(key: &SigningKey, mut pd: Vec<u64>) -> Self {
        pd.sort_unstable();
        pd.dedup();
        let signature = key.sign(&pd_message(key.id(), &pd));
        SignedPd {
            author: key.id(),
            pd,
            signature,
        }
    }

    /// Builds an *unverifiable* record: a Byzantine process claiming a PD
    /// for `author` without holding `author`'s key. Always fails
    /// [`Self::verify`] unless `author` happens to equal the forging key's
    /// ID.
    pub fn forge(author: u64, mut pd: Vec<u64>) -> Self {
        pd.sort_unstable();
        pd.dedup();
        SignedPd {
            author,
            pd,
            signature: Signature::forged(author),
        }
    }

    /// Rebuilds a record from its wire parts, re-canonicalizing the PD
    /// (sorted + deduplicated) so the encoding a verifier checks is the
    /// same one [`Self::sign`] produced. Used by deserialization layers;
    /// the attached signature is carried verbatim, so the rebuilt record
    /// verifies iff the serialized one did.
    pub fn from_parts(author: u64, mut pd: Vec<u64>, signature: Signature) -> Self {
        pd.sort_unstable();
        pd.dedup();
        SignedPd {
            author,
            pd,
            signature,
        }
    }

    /// The claimed author.
    pub fn author(&self) -> u64 {
        self.author
    }

    /// The claimed PD contents (sorted, deduplicated).
    pub fn pd(&self) -> &[u64] {
        &self.pd
    }

    /// The attached signature (valid or forged) — exposed so callers can
    /// fingerprint the *exact* record, signature bytes included.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Verifies the record against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            self.author,
            &pd_message(self.author, &self.pd),
            &self.signature,
        )
    }

    /// Verifies the record inside an open [`BatchVerifier`] session —
    /// same verdict as [`Self::verify`], amortizing the registry lock
    /// over a whole bundle.
    pub fn verify_with(&self, batch: &BatchVerifier<'_>) -> bool {
        batch.verify(
            self.author,
            &pd_message(self.author, &self.pd),
            &self.signature,
        )
    }
}

/// A generic signed byte payload with a domain-separation label, used by
/// the committee consensus protocol for votes and decisions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignedValue {
    signer: u64,
    domain: &'static str,
    payload: Bytes,
    signature: Signature,
}

impl SignedValue {
    fn message(domain: &str, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(domain.len() + payload.len() + 10);
        out.extend_from_slice(b"cupft-val-v1");
        out.extend_from_slice(&(domain.len() as u64).to_be_bytes());
        out.extend_from_slice(domain.as_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Signs `payload` under `domain`.
    pub fn sign(key: &SigningKey, domain: &'static str, payload: Bytes) -> Self {
        let signature = key.sign(&Self::message(domain, &payload));
        SignedValue {
            signer: key.id(),
            domain,
            payload,
            signature,
        }
    }

    /// Rebuilds a signed value from its wire parts. The domain must
    /// already be interned (see [`crate::domains::intern`]) so the
    /// rebuilt value compares equal to what the signer produced; the
    /// signature is carried verbatim, so the rebuilt value verifies iff
    /// the serialized one did.
    pub fn from_parts(
        signer: u64,
        domain: &'static str,
        payload: Bytes,
        signature: Signature,
    ) -> Self {
        SignedValue {
            signer,
            domain,
            payload,
            signature,
        }
    }

    /// The attached signature — exposed so serialization layers can carry
    /// it verbatim.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The signer's raw ID.
    pub fn signer(&self) -> u64 {
        self.signer
    }

    /// The domain label.
    pub fn domain(&self) -> &'static str {
        self.domain
    }

    /// The signed payload.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Verifies the value against the registry, additionally checking the
    /// expected domain (so a vote cannot be replayed as a decision).
    pub fn verify(&self, registry: &KeyRegistry, expected_domain: &str) -> bool {
        self.domain == expected_domain
            && registry.verify(
                self.signer,
                &Self::message(self.domain, &self.payload),
                &self.signature,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_pd_roundtrip() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(1);
        let rec = SignedPd::sign(&key, vec![2, 3, 4]);
        assert!(rec.verify(&reg));
        assert_eq!(rec.author(), 1);
        assert_eq!(rec.pd(), &[2, 3, 4]);
    }

    #[test]
    fn signed_pd_canonicalizes() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(1);
        let a = SignedPd::sign(&key, vec![4, 2, 3, 2]);
        let b = SignedPd::sign(&key, vec![2, 3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn forged_pd_fails_verification() {
        let mut reg = KeyRegistry::new();
        reg.register(1);
        let forged = SignedPd::forge(1, vec![9, 9, 9]);
        assert!(!forged.verify(&reg));
    }

    #[test]
    fn byzantine_cannot_modify_correct_pd() {
        // Byzantine 2 receives 1's signed PD and tries to alter it.
        let mut reg = KeyRegistry::new();
        let key1 = reg.register(1);
        reg.register(2);
        let original = SignedPd::sign(&key1, vec![5, 6]);
        // Rebuilding the record with different contents requires 1's key;
        // the only structural option is a forgery, which fails.
        let tampered = SignedPd::forge(1, vec![5, 6, 7]);
        assert!(original.verify(&reg));
        assert!(!tampered.verify(&reg));
    }

    #[test]
    fn signed_value_roundtrip_and_domain_separation() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(3);
        let v = SignedValue::sign(&key, "prepare", Bytes::from_static(b"block-9"));
        assert!(v.verify(&reg, "prepare"));
        assert!(!v.verify(&reg, "commit"));
        assert_eq!(v.signer(), 3);
        assert_eq!(v.payload().as_ref(), b"block-9");
    }

    #[test]
    fn signed_value_not_transferable() {
        let mut reg = KeyRegistry::new();
        let key3 = reg.register(3);
        reg.register(4);
        let v = SignedValue::sign(&key3, "prepare", Bytes::from_static(b"x"));
        // A verifier checking it as 4's message must fail (signer encoded).
        assert_eq!(v.signer(), 3);
        assert!(v.verify(&reg, "prepare"));
    }

    #[test]
    fn verify_with_agrees_with_verify() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(1);
        let good = SignedPd::sign(&key, vec![2, 3]);
        let bad = SignedPd::forge(4, vec![2, 3]);
        let batch = reg.batch();
        assert!(good.verify_with(&batch));
        assert!(!bad.verify_with(&batch));
        drop(batch);
        assert!(good.verify(&reg));
        assert!(!bad.verify(&reg));
    }

    #[test]
    fn from_parts_reconstructs_verifiable_record() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(6);
        let original = SignedPd::sign(&key, vec![1, 2, 9]);
        let rebuilt = SignedPd::from_parts(
            original.author(),
            original.pd().to_vec(),
            *original.signature(),
        );
        assert_eq!(rebuilt, original);
        assert!(rebuilt.verify(&reg));
        // A tampered PD no longer matches the carried signature.
        let tampered = SignedPd::from_parts(original.author(), vec![1, 2], *original.signature());
        assert!(!tampered.verify(&reg));
    }

    #[test]
    fn empty_pd_signs() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(10);
        let rec = SignedPd::sign(&key, vec![]);
        assert!(rec.verify(&reg));
        assert!(rec.pd().is_empty());
    }
}
