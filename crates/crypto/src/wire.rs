//! Wire codecs for the crypto vocabulary: signatures and signed records.
//!
//! Layouts (all integers big-endian, following the workspace-wide
//! conventions in [`cupft_wire`]):
//!
//! * [`Signature`] — `signer:u64 ‖ tag:[u8;32]` (raw digest, no length
//!   prefix). This is byte-for-byte the layout the discovery snapshot
//!   codec used before the traits existed.
//! * [`SignedPd`] — `author:u64 ‖ pd:(u64 count ‖ u64…) ‖ Signature`.
//!   Decode re-canonicalizes through [`SignedPd::from_parts`], so a
//!   hostile non-sorted encoding still yields the canonical record (and
//!   a signature over anything else fails verification as it should).
//! * [`SignedValue`] — `signer:u64 ‖ domain:str ‖ payload:bytes ‖
//!   Signature`; the domain is interned against [`crate::domains`] and
//!   unknown domains are rejected at decode time.

use bytes::Bytes;
use cupft_wire::{put_bytes, Decode, Encode, Reader, WireError};

use crate::sha256::DIGEST_LEN;
use crate::{domains, Signature, SignedPd, SignedValue};

impl Encode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.signer().encode(out);
        out.extend_from_slice(self.tag());
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let signer = r.u64()?;
        let tag = r.take(DIGEST_LEN)?.try_into().expect("digest length");
        Ok(Signature::from_parts(signer, tag))
    }
}

impl Encode for SignedPd {
    fn encode(&self, out: &mut Vec<u8>) {
        self.author().encode(out);
        self.pd().encode(out);
        self.signature().encode(out);
    }
}

impl Decode for SignedPd {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let author = r.u64()?;
        let pd = Vec::<u64>::decode(r)?;
        let signature = Signature::decode(r)?;
        Ok(SignedPd::from_parts(author, pd, signature))
    }
}

impl Encode for SignedValue {
    fn encode(&self, out: &mut Vec<u8>) {
        self.signer().encode(out);
        put_bytes(out, self.domain().as_bytes());
        self.payload().encode(out);
        self.signature().encode(out);
    }
}

impl Decode for SignedValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let signer = r.u64()?;
        let raw_domain = r.bytes()?;
        let domain = std::str::from_utf8(raw_domain)
            .ok()
            .and_then(domains::intern)
            .ok_or(WireError::Malformed("unknown signature domain"))?;
        let payload = Bytes::decode(r)?;
        let signature = Signature::decode(r)?;
        Ok(SignedValue::from_parts(signer, domain, payload, signature))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyRegistry;
    use cupft_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn signature_roundtrips_and_still_verifies() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(5);
        let sig = key.sign(b"message");
        let back: Signature = decode_from_slice(&encode_to_vec(&sig)).unwrap();
        assert_eq!(back, sig);
        assert!(reg.verify(5, b"message", &back));
    }

    #[test]
    fn signed_pd_roundtrips_verbatim() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(3);
        let rec = SignedPd::sign(&key, vec![9, 1, 4]);
        let bytes = encode_to_vec(&rec);
        let back: SignedPd = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(encode_to_vec(&back), bytes);
        assert!(back.verify(&reg));
    }

    #[test]
    fn signed_value_roundtrips_with_interned_domain() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(7);
        let v = SignedValue::sign(&key, domains::PREPARE, Bytes::copy_from_slice(b"block"));
        let back: SignedValue = decode_from_slice(&encode_to_vec(&v)).unwrap();
        assert_eq!(back, v);
        assert!(back.verify(&reg, domains::PREPARE));
    }

    #[test]
    fn signed_value_rejects_unknown_domain() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(7);
        let v = SignedValue::sign(&key, domains::COMMIT, Bytes::copy_from_slice(b"x"));
        let mut bytes = encode_to_vec(&v);
        // The domain string starts after signer(8) + len(8); corrupt it.
        bytes[16] ^= 0x01;
        assert_eq!(
            decode_from_slice::<SignedValue>(&bytes),
            Err(WireError::Malformed("unknown signature domain"))
        );
    }
}
