//! HMAC-SHA256 (RFC 2104).

use crate::sha256::{digest, Digest, Sha256};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Example
///
/// ```
/// use cupft_crypto::hmac::hmac_sha256;
///
/// let mac = hmac_sha256(b"key", b"message");
/// assert_eq!(mac.len(), 32);
/// assert_ne!(mac, hmac_sha256(b"key", b"other message"));
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = digest(key);
        key_block[..hashed.len()].copy_from_slice(&hashed);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors.

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let mac = hmac_sha256(&key, &msg);
        assert_eq!(
            to_hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn exact_block_size_key() {
        let key = [0x11u8; 64];
        let a = hmac_sha256(&key, b"m");
        let b = hmac_sha256(&key, b"m");
        assert_eq!(a, b);
    }
}
