//! Signing keys and the simulated PKI registry.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard};

use crate::hmac::hmac_sha256;
use crate::sha256::{Digest, DIGEST_LEN};

/// A digital signature over a byte string.
///
/// Internally an HMAC tag; the scheme's unforgeability inside the
/// simulation comes from key isolation (only the owning process's
/// [`SigningKey`] can produce the tag, and the registry only exposes
/// verification).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    signer: u64,
    tag: Digest,
}

impl Signature {
    /// The claimed signer's raw process ID.
    pub fn signer(&self) -> u64 {
        self.signer
    }

    /// The raw MAC tag.
    pub fn tag(&self) -> &Digest {
        &self.tag
    }

    /// A structurally valid but cryptographically garbage signature, used
    /// by Byzantine actors attempting forgery in tests and experiments.
    pub fn forged(signer: u64) -> Self {
        Signature {
            signer,
            tag: [0xde; DIGEST_LEN],
        }
    }

    /// Rebuilds a signature from its wire parts (signer ID and raw tag).
    ///
    /// Used by deserialization layers (e.g. the `DiscoveryState` snapshot
    /// codec): the resulting signature carries exactly the given bytes and
    /// verifies iff the original did.
    pub fn from_parts(signer: u64, tag: Digest) -> Self {
        Signature { signer, tag }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature(p{}, {:02x}{:02x}{:02x}{:02x}…)",
            self.signer, self.tag[0], self.tag[1], self.tag[2], self.tag[3]
        )
    }
}

/// A process's private signing key.
///
/// Obtainable only from [`KeyRegistry::register`]; cloning is allowed (a
/// process may hand its key to its own sub-components) but the simulation
/// never routes one process's key to another.
#[derive(Clone)]
pub struct SigningKey {
    id: u64,
    secret: Digest,
}

impl SigningKey {
    /// The owning process's raw ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            signer: self.id,
            tag: hmac_sha256(&self.secret, message),
        }
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "SigningKey(p{})", self.id)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    secrets: BTreeMap<u64, Digest>,
}

/// The simulated PKI: issues signing keys and verifies signatures.
///
/// Cheaply cloneable (shared interior); a single registry is shared by all
/// processes of a simulation, mirroring the paper's assumption that IDs are
/// Sybil-resistant and signatures verifiable by everyone.
///
/// # Example
///
/// ```
/// use cupft_crypto::KeyRegistry;
///
/// let mut registry = KeyRegistry::new();
/// let key = registry.register(7);
/// let sig = key.sign(b"payload");
/// assert!(registry.verify(7, b"payload", &sig));
/// // another process cannot forge 7's signature
/// let mallory = registry.register(8);
/// let fake = mallory.sign(b"payload");
/// assert!(!registry.verify(7, b"payload", &fake));
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        KeyRegistry::default()
    }

    /// Registers process `id`, deriving its key deterministically from the
    /// ID (so simulations are reproducible), and returns its private key.
    ///
    /// Registering the same ID twice returns the same key: the registry is
    /// the Sybil guard — one ID, one key.
    pub fn register(&mut self, id: u64) -> SigningKey {
        let secret = derive_secret(id);
        self.inner.write().secrets.insert(id, secret);
        SigningKey { id, secret }
    }

    /// Whether `id` has been registered.
    pub fn contains(&self, id: u64) -> bool {
        self.inner.read().secrets.contains_key(&id)
    }

    /// Verifies that `sig` is `id`'s signature over `message`.
    ///
    /// Returns `false` for unregistered IDs, signer mismatches, and invalid
    /// tags.
    pub fn verify(&self, id: u64, message: &[u8], sig: &Signature) -> bool {
        verify_against(&self.inner.read(), id, message, sig)
    }

    /// Opens a batch-verification session: the returned [`BatchVerifier`]
    /// holds the registry's read lock, so verifying a whole bundle of
    /// signatures (a SETPDS worth of certificates) pays for lock
    /// acquisition once instead of per record. Readers don't exclude each
    /// other, so many batch sessions can verify concurrently; only
    /// [`Self::register`] is blocked while a session is open — keep
    /// sessions short-lived.
    pub fn batch(&self) -> BatchVerifier<'_> {
        BatchVerifier {
            inner: self.inner.read(),
        }
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.inner.read().secrets.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().secrets.is_empty()
    }
}

/// The shared verification body: signer-claim check, secret lookup, HMAC
/// recompute, constant-time-style tag comparison. [`KeyRegistry::verify`]
/// runs it under a fresh read lock per call; [`BatchVerifier`] runs it
/// under one held lock per session.
fn verify_against(inner: &RegistryInner, id: u64, message: &[u8], sig: &Signature) -> bool {
    if sig.signer != id {
        return false;
    }
    let Some(secret) = inner.secrets.get(&id) else {
        return false;
    };
    let expected = hmac_sha256(secret, message);
    // Constant-time-style comparison (not strictly needed in a
    // simulation, but cheap and good hygiene).
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(sig.tag.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// A verification session over a snapshot of the registry.
///
/// Created by [`KeyRegistry::batch`]; holds the registry's read lock for
/// its lifetime, so a bundle of verifications pays one lock acquisition
/// total. Verification itself is pure — the session observes the key set
/// as of its creation, which is all the simulation needs (registration
/// happens before any traffic flows).
pub struct BatchVerifier<'a> {
    inner: RwLockReadGuard<'a, RegistryInner>,
}

impl BatchVerifier<'_> {
    /// Verifies that `sig` is `id`'s signature over `message` — same
    /// semantics as [`KeyRegistry::verify`], without re-locking.
    pub fn verify(&self, id: u64, message: &[u8], sig: &Signature) -> bool {
        verify_against(&self.inner, id, message, sig)
    }
}

fn derive_secret(id: u64) -> Digest {
    // Fixed domain-separation label; deterministic per ID for replayable
    // simulations.
    let mut msg = Vec::with_capacity(24);
    msg.extend_from_slice(b"cupft-key-v1");
    msg.extend_from_slice(&id.to_be_bytes());
    crate::sha256::digest(&msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(42);
        let sig = key.sign(b"data");
        assert!(reg.verify(42, b"data", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(42);
        let sig = key.sign(b"data");
        assert!(!reg.verify(42, b"other", &sig));
    }

    #[test]
    fn verify_rejects_wrong_signer_claim() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(42);
        reg.register(43);
        let sig = key.sign(b"data");
        assert!(!reg.verify(43, b"data", &sig));
    }

    #[test]
    fn verify_rejects_unregistered() {
        let reg = KeyRegistry::new();
        let sig = Signature::forged(9);
        assert!(!reg.verify(9, b"data", &sig));
    }

    #[test]
    fn forged_signature_rejected() {
        let mut reg = KeyRegistry::new();
        reg.register(7);
        assert!(!reg.verify(7, b"data", &Signature::forged(7)));
    }

    #[test]
    fn registry_clone_shares_state() {
        let mut reg = KeyRegistry::new();
        let reg2 = reg.clone();
        let key = reg.register(5);
        let sig = key.sign(b"x");
        assert!(reg2.verify(5, b"x", &sig));
        assert_eq!(reg2.len(), 1);
    }

    #[test]
    fn deterministic_keys_per_id() {
        let mut a = KeyRegistry::new();
        let mut b = KeyRegistry::new();
        let sig_a = a.register(3).sign(b"m");
        let sig_b = b.register(3).sign(b"m");
        assert_eq!(sig_a, sig_b);
    }

    #[test]
    fn debug_never_leaks_secret() {
        let mut reg = KeyRegistry::new();
        let key = reg.register(1);
        let dbg = format!("{key:?}");
        assert_eq!(dbg, "SigningKey(p1)");
    }

    #[test]
    fn batch_verifier_matches_per_call_verify() {
        let mut reg = KeyRegistry::new();
        let keys: Vec<SigningKey> = (1..=8).map(|id| reg.register(id)).collect();
        let sigs: Vec<Signature> = keys.iter().map(|k| k.sign(b"round-1")).collect();
        let batch = reg.batch();
        for (key, sig) in keys.iter().zip(&sigs) {
            assert!(batch.verify(key.id(), b"round-1", sig));
            assert!(!batch.verify(key.id(), b"round-2", sig));
        }
        // unregistered + mismatched-signer claims fail identically
        assert!(!batch.verify(99, b"round-1", &Signature::forged(99)));
        assert!(!batch.verify(2, b"round-1", &sigs[0]));
    }

    #[test]
    fn empty_and_len() {
        let mut reg = KeyRegistry::new();
        assert!(reg.is_empty());
        reg.register(1);
        assert!(!reg.is_empty());
        assert!(reg.contains(1));
        assert!(!reg.contains(2));
    }
}
