//! Wire codecs for the adversary control vocabulary.
//!
//! Tamper schedules, churn schedules, and Byzantine strategy specs are
//! already *data* — that is the whole design of this crate — so giving
//! them a wire form is what lets a multi-process experiment ship its
//! adversarial configuration to node processes the same way the driver
//! ships protocol parameters: encoded, framed, versioned. Nothing here
//! changes the specs' semantics; the executable tampers and strategies
//! are still compiled locally after decode.
//!
//! Layouts follow the workspace conventions ([`cupft_wire`] crate docs):
//! big-endian integers, `u8` enum tags, `u64` count prefixes.

use cupft_committee::Value;
use cupft_graph::{ProcessId, ProcessSet};
use cupft_wire::{Decode, Encode, Reader, WireError};

use crate::churn::{ChurnEvent, ChurnSpec};
use crate::sched::TamperSpec;
use crate::spec::StrategySpec;

impl Encode for TamperSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TamperSpec::ReorderWindow { window, seed } => {
                out.push(0);
                window.encode(out);
                seed.encode(out);
            }
            TamperSpec::DelayFrom { senders, extra } => {
                out.push(1);
                senders.encode(out);
                extra.encode(out);
            }
            TamperSpec::DropFrom { senders } => {
                out.push(2);
                senders.encode(out);
            }
            TamperSpec::Chain(parts) => {
                out.push(3);
                parts.encode(out);
            }
        }
    }
}

impl Decode for TamperSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(TamperSpec::ReorderWindow {
                window: r.u64()?,
                seed: r.u64()?,
            }),
            1 => Ok(TamperSpec::DelayFrom {
                senders: ProcessSet::decode(r)?,
                extra: r.u64()?,
            }),
            2 => Ok(TamperSpec::DropFrom {
                senders: ProcessSet::decode(r)?,
            }),
            3 => Ok(TamperSpec::Chain(Vec::decode(r)?)),
            tag => Err(WireError::BadTag {
                ty: "TamperSpec",
                tag,
            }),
        }
    }
}

impl Encode for ChurnEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChurnEvent::JoinAt {
                tick,
                node,
                seed_peers,
            } => {
                out.push(0);
                tick.encode(out);
                node.encode(out);
                seed_peers.encode(out);
            }
            ChurnEvent::LeaveAt { tick, node } => {
                out.push(1);
                tick.encode(out);
                node.encode(out);
            }
            ChurnEvent::CrashRecoverAt {
                tick,
                node,
                down_for,
            } => {
                out.push(2);
                tick.encode(out);
                node.encode(out);
                down_for.encode(out);
            }
        }
    }
}

impl Decode for ChurnEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ChurnEvent::JoinAt {
                tick: r.u64()?,
                node: ProcessId::decode(r)?,
                seed_peers: ProcessSet::decode(r)?,
            }),
            1 => Ok(ChurnEvent::LeaveAt {
                tick: r.u64()?,
                node: ProcessId::decode(r)?,
            }),
            2 => Ok(ChurnEvent::CrashRecoverAt {
                tick: r.u64()?,
                node: ProcessId::decode(r)?,
                down_for: r.u64()?,
            }),
            tag => Err(WireError::BadTag {
                ty: "ChurnEvent",
                tag,
            }),
        }
    }
}

impl Encode for ChurnSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.events.encode(out);
    }
}

impl Decode for ChurnSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ChurnSpec::new(Vec::decode(r)?))
    }
}

impl Encode for StrategySpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StrategySpec::Silent => out.push(0),
            StrategySpec::FakePd { claimed } => {
                out.push(1);
                claimed.encode(out);
            }
            StrategySpec::EquivocatePd { even, odd } => {
                out.push(2);
                even.encode(out);
                odd.encode(out);
            }
            StrategySpec::ForgeUnsignedPd { victim, claimed } => {
                out.push(3);
                victim.encode(out);
                claimed.encode(out);
            }
            StrategySpec::LieDecidedVal { value } => {
                out.push(4);
                value.encode(out);
            }
            StrategySpec::EquivocateValue {
                committee,
                value_a,
                value_b,
            } => {
                out.push(5);
                committee.encode(out);
                value_a.encode(out);
                value_b.encode(out);
            }
            StrategySpec::DelayRelease { until, inner } => {
                out.push(6);
                until.encode(out);
                inner.encode(out);
            }
            StrategySpec::TargetSubset { targets, inner } => {
                out.push(7);
                targets.encode(out);
                inner.encode(out);
            }
            StrategySpec::FlipAfter { at, before, after } => {
                out.push(8);
                at.encode(out);
                before.encode(out);
                after.encode(out);
            }
        }
    }
}

impl Decode for StrategySpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(StrategySpec::Silent),
            1 => Ok(StrategySpec::FakePd {
                claimed: ProcessSet::decode(r)?,
            }),
            2 => Ok(StrategySpec::EquivocatePd {
                even: ProcessSet::decode(r)?,
                odd: ProcessSet::decode(r)?,
            }),
            3 => Ok(StrategySpec::ForgeUnsignedPd {
                victim: ProcessId::decode(r)?,
                claimed: ProcessSet::decode(r)?,
            }),
            4 => Ok(StrategySpec::LieDecidedVal {
                value: Value::decode(r)?,
            }),
            5 => Ok(StrategySpec::EquivocateValue {
                committee: ProcessSet::decode(r)?,
                value_a: Value::decode(r)?,
                value_b: Value::decode(r)?,
            }),
            6 => Ok(StrategySpec::DelayRelease {
                until: r.u64()?,
                inner: Box::new(StrategySpec::decode(r)?),
            }),
            7 => Ok(StrategySpec::TargetSubset {
                targets: ProcessSet::decode(r)?,
                inner: Box::new(StrategySpec::decode(r)?),
            }),
            8 => Ok(StrategySpec::FlipAfter {
                at: r.u64()?,
                before: Box::new(StrategySpec::decode(r)?),
                after: Box::new(StrategySpec::decode(r)?),
            }),
            tag => Err(WireError::BadTag {
                ty: "StrategySpec",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;
    use cupft_wire::{decode_from_slice, encode_to_vec};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_from_slice(&bytes).expect("decodes");
        assert_eq!(back, v);
        assert_eq!(encode_to_vec(&back), bytes);
    }

    #[test]
    fn tamper_specs_roundtrip() {
        roundtrip(TamperSpec::ReorderWindow {
            window: 50,
            seed: 7,
        });
        roundtrip(TamperSpec::Chain(vec![
            TamperSpec::DelayFrom {
                senders: process_set([1, 2]),
                extra: 9,
            },
            TamperSpec::DropFrom {
                senders: process_set([4]),
            },
        ]));
    }

    #[test]
    fn churn_specs_roundtrip() {
        roundtrip(ChurnSpec::default());
        roundtrip(ChurnSpec::new(vec![
            ChurnEvent::JoinAt {
                tick: 100,
                node: ProcessId::new(9),
                seed_peers: process_set([1, 2]),
            },
            ChurnEvent::LeaveAt {
                tick: 200,
                node: ProcessId::new(3),
            },
            ChurnEvent::CrashRecoverAt {
                tick: 150,
                node: ProcessId::new(7),
                down_for: 80,
            },
        ]));
    }

    #[test]
    fn strategy_specs_roundtrip_recursively() {
        roundtrip(StrategySpec::Silent);
        roundtrip(StrategySpec::FlipAfter {
            at: 400,
            before: Box::new(StrategySpec::TargetSubset {
                targets: process_set([1, 3]),
                inner: Box::new(StrategySpec::EquivocateValue {
                    committee: process_set([1, 2, 3, 4]),
                    value_a: Value::from_static(b"a"),
                    value_b: Value::from_static(b"b"),
                }),
            }),
            after: Box::new(StrategySpec::DelayRelease {
                until: 900,
                inner: Box::new(StrategySpec::LieDecidedVal {
                    value: Value::from_static(b"evil"),
                }),
            }),
        });
    }

    #[test]
    fn unknown_tags_reject() {
        assert!(matches!(
            decode_from_slice::<TamperSpec>(&[9]),
            Err(WireError::BadTag {
                ty: "TamperSpec",
                ..
            })
        ));
        assert!(matches!(
            decode_from_slice::<ChurnEvent>(&[9]),
            Err(WireError::BadTag {
                ty: "ChurnEvent",
                ..
            })
        ));
        assert!(matches!(
            decode_from_slice::<StrategySpec>(&[99]),
            Err(WireError::BadTag {
                ty: "StrategySpec",
                ..
            })
        ));
    }
}
