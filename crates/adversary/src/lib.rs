//! Pluggable fault-injection engine for BFT-CUP / BFT-CUPFT experiments.
//!
//! The paper's results (Theorems 5–7, Table I) quantify over *arbitrary*
//! Byzantine strategies and message schedules; this crate makes that
//! adversary space a first-class, composable subsystem instead of a fixed
//! enum of hard-coded actors. Five pieces:
//!
//! * **[`Strategy`]** ([`strategy`]) — what a faulty process does, as a
//!   composable trait with combinators ([`TargetSubset`], [`DelayRelease`],
//!   [`FlipAfter`], [`Mute`]); [`StrategyActor`] runs any strategy on
//!   either [`cupft_net::Runtime`] substrate.
//! * **[`StrategySpec`]** ([`spec`]) — the same strategies as *data*: a
//!   cloneable expression tree used for grid axes, labels, and shrinking.
//!   Protocol crates compile specs into boxed strategies for their message
//!   type.
//! * **[`TamperSpec`]** ([`sched`]) — network-side adversaries (reorder
//!   windows, targeted slow-downs, within-model drops) described as data
//!   and compiled onto the [`cupft_net::Tamper`] interception hook, so one
//!   schedule runs on both the simulator and the threaded runtime.
//! * **Traces** ([`trace`]) — every send / delivery / decision of a run as
//!   a compact [`ExecutionTrace`] with a stable fingerprint;
//!   [`RecordingTamper`] captures sends through the same interception
//!   hook. **[`TraceChecker`]** ([`invariant`]) rules on the §II-B
//!   consensus properties (agreement, validity, integrity,
//!   termination-by-bound) post-hoc over traces.
//! * **Shrinking** ([`shrink`](fn@shrink)) — given a violating assignment,
//!   deterministically search for a minimal failing variant by pruning
//!   strategy combinators and fault sets.
//! * **Churn** ([`churn`]) — dynamic-membership schedules
//!   ([`ChurnSpec`]: late joins, silent departures, crash-recoveries) as
//!   the same kind of shrinkable data tree, with weakened invariants
//!   (churn-agreement, join-convergence, recovery-consistency) checked by
//!   [`TraceChecker::with_churn`] over [`TraceEventKind::Knowledge`]
//!   samples, and a dedicated [`shrink_churn`] minimizer.
//!
//! `cupft_core` wires these into the `Scenario` runner (recorded runs, a
//! strategy grid axis, and a shrink driver); see `tests/adversary_catch.rs`
//! at the workspace root for the end-to-end loop: inject → trace → flag →
//! shrink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod invariant;
pub mod sched;
pub mod shrink;
pub mod spec;
pub mod strategy;
pub mod trace;
mod wire;

pub use churn::{
    churn_candidates, churn_size, shrink_churn, ChurnEvent, ChurnShrinkOutcome, ChurnSpec,
};
pub use invariant::{ChurnContext, Invariant, TraceChecker, Violation};
pub use sched::TamperSpec;
pub use shrink::{assignment_size, shrink, Assignment, ShrinkOutcome};
pub use spec::StrategySpec;
pub use strategy::{
    DelayRelease, FlipAfter, Mute, Strategy, StrategyActor, TargetSubset, FLIP_TICK, RELEASE_TICK,
};
pub use trace::{
    ExecutionTrace, KnowledgeMoment, RecordingTamper, SendLog, TraceEvent, TraceEventKind,
};

/// Formats a process set compactly (`{1,2,3}`) — the shared formatter
/// behind every spec/strategy/tamper label, so display names cannot
/// drift apart.
pub fn fmt_process_set(s: &cupft_graph::ProcessSet) -> String {
    let ids: Vec<String> = s.iter().map(|p| p.raw().to_string()).collect();
    format!("{{{}}}", ids.join(","))
}
