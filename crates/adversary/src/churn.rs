//! Dynamic-membership schedules as data, plus their deterministic shrinker.
//!
//! The paper assumes a *static* universe: participants are unknown but
//! fixed at t=0. A [`ChurnSpec`] relaxes that — it is a scheduled list of
//! membership events (late joins, silent departures, crash-recoveries)
//! mirroring the [`crate::spec::StrategySpec`] / [`crate::TamperSpec`]
//! discipline: plain cloneable data with [labels](ChurnSpec::label), a
//! [size metric](churn_size), and strictly-smaller
//! [simplifications](ChurnEvent::simplifications), so churn schedules ride
//! the same grid axes and the same greedy shrinking loop as fault
//! assignments. The runtimes honor a spec *identically by construction*:
//! churn is executed at the actor level (time-gated dormancy, `halt()` on
//! departure, snapshot/restore on crash-recovery), which both substrates
//! already treat the same way.
//!
//! Ticks are substrate time: simulated ticks on the simulator, elapsed
//! milliseconds on the threaded runtime — the same reading every other
//! schedule knob uses.

use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::Time;

use crate::fmt_process_set;

/// One scheduled membership event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnEvent {
    /// `node` joins late: dormant until `tick`, then bootstraps discovery
    /// from `seed_peers` (its only initial knowledge beyond its own PD —
    /// a genuinely late joiner has an empty oracle horizon and must pull
    /// everything through delta gossip).
    JoinAt {
        /// When the node wakes up.
        tick: Time,
        /// The joining node.
        node: ProcessId,
        /// Out-of-band bootstrap hints (may be empty if the node's own PD
        /// already names someone).
        seed_peers: ProcessSet,
    },
    /// `node` departs silently at `tick`: it stops sending and receiving
    /// forever, with no goodbye message — indistinguishable, to the rest
    /// of the system, from a crash.
    LeaveAt {
        /// When the node goes dark.
        tick: Time,
        /// The departing node.
        node: ProcessId,
    },
    /// `node` crashes at `tick`, snapshots its durable discovery state,
    /// stays down for `down_for` ticks, then rejoins from the snapshot
    /// with a bumped membership epoch.
    CrashRecoverAt {
        /// When the node crashes.
        tick: Time,
        /// The crashing node.
        node: ProcessId,
        /// How long it stays down before restoring.
        down_for: Time,
    },
}

impl ChurnEvent {
    /// The node the event concerns.
    pub fn node(&self) -> ProcessId {
        match self {
            ChurnEvent::JoinAt { node, .. }
            | ChurnEvent::LeaveAt { node, .. }
            | ChurnEvent::CrashRecoverAt { node, .. } => *node,
        }
    }

    /// When the event fires.
    pub fn tick(&self) -> Time {
        match self {
            ChurnEvent::JoinAt { tick, .. }
            | ChurnEvent::LeaveAt { tick, .. }
            | ChurnEvent::CrashRecoverAt { tick, .. } => *tick,
        }
    }

    /// The shrinker's per-event weight: an extra point for a non-empty
    /// seed set, so "same join, no seeds" counts as progress.
    pub fn size(&self) -> usize {
        match self {
            ChurnEvent::JoinAt { seed_peers, .. } if !seed_peers.is_empty() => 2,
            _ => 1,
        }
    }

    /// Compact display label, in the house style of
    /// [`crate::StrategySpec::label`].
    pub fn label(&self) -> String {
        match self {
            ChurnEvent::JoinAt {
                tick,
                node,
                seed_peers,
            } => {
                let n = node.raw();
                if seed_peers.is_empty() {
                    format!("join@{tick}<{n}>")
                } else {
                    format!("join@{tick}<{n}>+{}", fmt_process_set(seed_peers))
                }
            }
            ChurnEvent::LeaveAt { tick, node } => format!("leave@{tick}<{}>", node.raw()),
            ChurnEvent::CrashRecoverAt {
                tick,
                node,
                down_for,
            } => format!("crashrec@{tick}+{down_for}<{}>", node.raw()),
        }
    }

    /// Strictly smaller rewrites of this event (see [`Self::size`]).
    pub fn simplifications(&self) -> Vec<ChurnEvent> {
        match self {
            ChurnEvent::JoinAt {
                tick,
                node,
                seed_peers,
            } if !seed_peers.is_empty() => vec![ChurnEvent::JoinAt {
                tick: *tick,
                node: *node,
                seed_peers: ProcessSet::new(),
            }],
            _ => Vec::new(),
        }
    }
}

/// A whole churn schedule: the events, in schedule order.
///
/// At most one event per node is honored per kind; accessors return the
/// first match, which keeps shrinking well-defined on degenerate inputs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChurnSpec {
    /// The scheduled events.
    pub events: Vec<ChurnEvent>,
}

impl ChurnSpec {
    /// A schedule from an event list.
    pub fn new(events: Vec<ChurnEvent>) -> Self {
        ChurnSpec { events }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty (no churn).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compact display label: `churn[join@100<9>,leave@200<3>]`.
    pub fn label(&self) -> String {
        if self.events.is_empty() {
            return "nochurn".to_string();
        }
        let parts: Vec<String> = self.events.iter().map(|e| e.label()).collect();
        format!("churn[{}]", parts.join(","))
    }

    /// The first scheduled join of `node`, if any.
    pub fn join_of(&self, node: ProcessId) -> Option<(Time, &ProcessSet)> {
        self.events.iter().find_map(|e| match e {
            ChurnEvent::JoinAt {
                tick,
                node: n,
                seed_peers,
            } if *n == node => Some((*tick, seed_peers)),
            _ => None,
        })
    }

    /// The first scheduled departure of `node`, if any.
    pub fn leave_of(&self, node: ProcessId) -> Option<Time> {
        self.events.iter().find_map(|e| match e {
            ChurnEvent::LeaveAt { tick, node: n } if *n == node => Some(*tick),
            _ => None,
        })
    }

    /// The first scheduled crash-recovery of `node`, if any, as
    /// `(crash_tick, down_for)`.
    pub fn crash_recover_of(&self, node: ProcessId) -> Option<(Time, Time)> {
        self.events.iter().find_map(|e| match e {
            ChurnEvent::CrashRecoverAt {
                tick,
                node: n,
                down_for,
            } if *n == node => Some((*tick, *down_for)),
            _ => None,
        })
    }

    /// All nodes with a scheduled join.
    pub fn joiners(&self) -> ProcessSet {
        self.events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::JoinAt { .. }))
            .map(|e| e.node())
            .collect()
    }

    /// All nodes with a scheduled departure.
    pub fn leavers(&self) -> ProcessSet {
        self.events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::LeaveAt { .. }))
            .map(|e| e.node())
            .collect()
    }

    /// All nodes with a scheduled crash-recovery.
    pub fn recoverers(&self) -> ProcessSet {
        self.events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::CrashRecoverAt { .. }))
            .map(|e| e.node())
            .collect()
    }

    /// Every node the schedule touches.
    pub fn nodes(&self) -> ProcessSet {
        self.events.iter().map(|e| e.node()).collect()
    }
}

/// The churn shrinker's size metric: the sum of per-event weights, so both
/// "fewer events" and "simpler event" are progress.
pub fn churn_size(spec: &ChurnSpec) -> usize {
    spec.events.iter().map(|e| e.size()).sum()
}

/// Outcome of a churn shrink search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnShrinkOutcome {
    /// The minimal failing schedule found.
    pub minimal: ChurnSpec,
    /// Accepted rewrite steps (0 = the input was already minimal).
    pub steps: usize,
    /// Oracle invocations spent on candidates (excludes the initial
    /// confirmation run).
    pub attempts: usize,
}

impl ChurnShrinkOutcome {
    /// Whether the search made the schedule strictly smaller.
    pub fn shrank(&self) -> bool {
        self.steps > 0
    }
}

/// The strictly smaller candidates of `spec`, in the deterministic order
/// the shrinker tries them: event removals first (front to back), then
/// per-event simplifications, deduplicated order-preservingly.
pub fn churn_candidates(spec: &ChurnSpec) -> Vec<ChurnSpec> {
    let mut out = Vec::new();
    for i in 0..spec.events.len() {
        let mut smaller = spec.clone();
        smaller.events.remove(i);
        out.push(smaller);
    }
    for (i, event) in spec.events.iter().enumerate() {
        for simpler in event.simplifications() {
            let mut rewritten = spec.clone();
            rewritten.events[i] = simpler;
            out.push(rewritten);
        }
    }
    let mut seen: Vec<ChurnSpec> = Vec::new();
    out.retain(|c| {
        if seen.contains(c) {
            false
        } else {
            seen.push(c.clone());
            true
        }
    });
    out
}

/// Greedily minimizes a failing churn schedule under `still_fails` — the
/// same contract as [`crate::shrink`](fn@crate::shrink) over fault
/// assignments: a deterministic oracle, candidates in fixed order, every
/// accepted step strictly decreases [`churn_size`], so the search
/// terminates and re-runs reproduce the same minimum and attempt count.
///
/// # Panics
///
/// Panics if `still_fails(&initial)` is `false`: shrinking a passing
/// schedule is a caller bug that would otherwise "minimize" to garbage
/// silently.
pub fn shrink_churn(
    initial: ChurnSpec,
    still_fails: &mut dyn FnMut(&ChurnSpec) -> bool,
) -> ChurnShrinkOutcome {
    assert!(
        still_fails(&initial),
        "shrink_churn() requires a failing initial schedule"
    );
    let mut current = initial;
    let mut steps = 0;
    let mut attempts = 0;
    loop {
        let mut improved = false;
        for candidate in churn_candidates(&current) {
            debug_assert!(churn_size(&candidate) < churn_size(&current));
            attempts += 1;
            if still_fails(&candidate) {
                current = candidate;
                steps += 1;
                improved = true;
                break;
            }
        }
        if !improved {
            return ChurnShrinkOutcome {
                minimal: current,
                steps,
                attempts,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    fn sample() -> ChurnSpec {
        ChurnSpec::new(vec![
            ChurnEvent::JoinAt {
                tick: 100,
                node: p(9),
                seed_peers: process_set([1, 2]),
            },
            ChurnEvent::LeaveAt {
                tick: 200,
                node: p(3),
            },
            ChurnEvent::CrashRecoverAt {
                tick: 150,
                node: p(7),
                down_for: 80,
            },
        ])
    }

    #[test]
    fn labels_are_compact() {
        let s = sample();
        assert_eq!(
            s.label(),
            "churn[join@100<9>+{1,2},leave@200<3>,crashrec@150+80<7>]"
        );
        assert_eq!(ChurnSpec::default().label(), "nochurn");
        assert_eq!(
            ChurnEvent::JoinAt {
                tick: 5,
                node: p(1),
                seed_peers: ProcessSet::new(),
            }
            .label(),
            "join@5<1>"
        );
    }

    #[test]
    fn accessors_find_first_match() {
        let s = sample();
        let (tick, seeds) = s.join_of(p(9)).unwrap();
        assert_eq!(tick, 100);
        assert_eq!(*seeds, process_set([1, 2]));
        assert_eq!(s.leave_of(p(3)), Some(200));
        assert_eq!(s.crash_recover_of(p(7)), Some((150, 80)));
        assert_eq!(s.join_of(p(3)), None);
        assert_eq!(s.joiners(), process_set([9]));
        assert_eq!(s.leavers(), process_set([3]));
        assert_eq!(s.recoverers(), process_set([7]));
        assert_eq!(s.nodes(), process_set([3, 7, 9]));
    }

    #[test]
    fn size_counts_events_and_seeds() {
        assert_eq!(churn_size(&ChurnSpec::default()), 0);
        assert_eq!(churn_size(&sample()), 4);
    }

    #[test]
    fn candidates_are_strictly_smaller_and_deduped() {
        let s = sample();
        let cs = churn_candidates(&s);
        assert!(!cs.is_empty());
        for c in &cs {
            assert!(churn_size(c) < churn_size(&s));
        }
        // Removals come first; the seeded join also simplifies in place.
        assert_eq!(cs[0].events.len(), 2);
        assert!(cs
            .iter()
            .any(|c| c.events.len() == 3 && c.join_of(p(9)).unwrap().1.is_empty()));
        // Duplicate events produce deduplicated candidates.
        let dup = ChurnSpec::new(vec![
            ChurnEvent::LeaveAt {
                tick: 10,
                node: p(1),
            },
            ChurnEvent::LeaveAt {
                tick: 10,
                node: p(1),
            },
        ]);
        assert_eq!(churn_candidates(&dup).len(), 1);
    }

    #[test]
    fn shrinks_to_single_event_reproducer() {
        // Oracle: fails whenever node 7 crash-recovers at all.
        let mut oracle = |s: &ChurnSpec| s.crash_recover_of(p(7)).is_some();
        let outcome = shrink_churn(sample(), &mut oracle);
        assert_eq!(
            outcome.minimal,
            ChurnSpec::new(vec![ChurnEvent::CrashRecoverAt {
                tick: 150,
                node: p(7),
                down_for: 80,
            }])
        );
        assert!(outcome.shrank());
        // Deterministic re-run, and already-minimal input is a fixpoint.
        assert_eq!(shrink_churn(sample(), &mut oracle), outcome);
        let again = shrink_churn(outcome.minimal.clone(), &mut oracle);
        assert_eq!(again.steps, 0);
    }

    #[test]
    #[should_panic(expected = "failing initial schedule")]
    fn passing_input_panics() {
        let mut oracle = |_: &ChurnSpec| false;
        shrink_churn(ChurnSpec::default(), &mut oracle);
    }
}
