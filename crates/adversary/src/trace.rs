//! Execution traces: compact send/deliver/decide event logs.
//!
//! An [`ExecutionTrace`] is the post-hoc evidence of one run: every send
//! (captured through a [`RecordingTamper`] installed on the substrate),
//! every delivery (the simulator's built-in delivery trace), and every
//! decision (read back from the actors). The [`crate::invariant`] checker
//! rules on consensus properties over traces; determinism tests compare
//! [`ExecutionTrace::fingerprint`]s between record and replay runs.
//!
//! Recording works on either substrate (the tamper hook is portable), but
//! byte-identical replay is a *simulator* guarantee — threaded runs trace
//! real nondeterministic interleavings.

use std::sync::{Arc, Mutex};

use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::{Fate, Tamper, Time};

/// When a [`TraceEventKind::Knowledge`] sample was taken relative to a
/// node's churn lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KnowledgeMoment {
    /// Just before a crash-recovering node snapshotted its state.
    AtCrash,
    /// Just after a recovering node restored its snapshot (before any
    /// post-recovery gossip).
    AtRecovery,
    /// At the end of the run.
    Final,
}

impl KnowledgeMoment {
    fn tag(&self) -> u8 {
        match self {
            KnowledgeMoment::AtCrash => 0,
            KnowledgeMoment::AtRecovery => 1,
            KnowledgeMoment::Final => 2,
        }
    }
}

/// What happened at one point of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A process handed a message to the network (recorded at send time;
    /// `dropped` marks messages a tamper discarded).
    Sent {
        /// Sender.
        from: ProcessId,
        /// Addressee.
        to: ProcessId,
        /// Message label.
        label: &'static str,
        /// Whether the tamper layer dropped it.
        dropped: bool,
    },
    /// The substrate delivered a message to an actor.
    Delivered {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Message label.
        label: &'static str,
    },
    /// A process fixed its decision value.
    Decided {
        /// The deciding process.
        process: ProcessId,
        /// The decided value bytes.
        value: Vec<u8>,
    },
    /// A sample of a process's `S_received` knowledge, taken at a churn
    /// lifecycle moment. The weakened churn invariants
    /// (join-convergence, recovery-consistency) are predicates over these
    /// samples.
    Knowledge {
        /// The sampled process.
        process: ProcessId,
        /// Its `S_received` set at the sample moment.
        received: ProcessSet,
        /// When in the churn lifecycle the sample was taken.
        moment: KnowledgeMoment,
    },
}

impl TraceEventKind {
    fn rank(&self) -> u8 {
        match self {
            TraceEventKind::Sent { .. } => 0,
            TraceEventKind::Delivered { .. } => 1,
            TraceEventKind::Decided { .. } => 2,
            TraceEventKind::Knowledge { .. } => 3,
        }
    }
}

/// One timestamped trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Substrate time (simulated ticks / elapsed milliseconds).
    pub time: Time,
    /// The event.
    pub kind: TraceEventKind,
}

/// A whole execution as an ordered event log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionTrace {
    /// Events in `(time, Sent<Delivered<Decided, stream order)` order.
    pub events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    /// Merges the three per-kind streams into one trace. Each stream must
    /// already be in its own recording order; the merge is a stable sort
    /// on `(time, kind rank)`, so equal-time events keep stream order and
    /// the result is deterministic whenever the streams are.
    pub fn assemble(
        sends: Vec<TraceEvent>,
        deliveries: Vec<TraceEvent>,
        decisions: Vec<TraceEvent>,
    ) -> Self {
        let mut events = sends;
        events.extend(deliveries);
        events.extend(decisions);
        events.sort_by_key(|e| (e.time, e.kind.rank()));
        ExecutionTrace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merges knowledge samples into the trace (builder style), keeping
    /// the `(time, kind rank)` order. Churn-aware runners attach one
    /// stream of [`TraceEventKind::Knowledge`] events after assembling
    /// the send/delivery/decision streams.
    pub fn with_knowledge(mut self, samples: Vec<TraceEvent>) -> Self {
        self.events.extend(samples);
        self.events.sort_by_key(|e| (e.time, e.kind.rank()));
        self
    }

    /// The decision events, in trace order.
    pub fn decisions(&self) -> impl Iterator<Item = (Time, ProcessId, &[u8])> {
        self.events.iter().filter_map(|e| match &e.kind {
            TraceEventKind::Decided { process, value } => {
                Some((e.time, *process, value.as_slice()))
            }
            _ => None,
        })
    }

    /// The knowledge samples, in trace order.
    pub fn knowledge(
        &self,
    ) -> impl Iterator<Item = (Time, ProcessId, &ProcessSet, KnowledgeMoment)> {
        self.events.iter().filter_map(|e| match &e.kind {
            TraceEventKind::Knowledge {
                process,
                received,
                moment,
            } => Some((e.time, *process, received, *moment)),
            _ => None,
        })
    }

    /// A stable FNV-1a fingerprint of the full event log. Two runs of the
    /// same (scenario, seed, strategy) triple on the simulator must agree
    /// on it byte for byte.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
        };
        for e in &self.events {
            mix(&e.time.to_be_bytes());
            match &e.kind {
                TraceEventKind::Sent {
                    from,
                    to,
                    label,
                    dropped,
                } => {
                    mix(b"S");
                    mix(&from.raw().to_be_bytes());
                    mix(&to.raw().to_be_bytes());
                    mix(label.as_bytes());
                    mix(&[*dropped as u8]);
                }
                TraceEventKind::Delivered { from, to, label } => {
                    mix(b"D");
                    mix(&from.raw().to_be_bytes());
                    mix(&to.raw().to_be_bytes());
                    mix(label.as_bytes());
                }
                TraceEventKind::Decided { process, value } => {
                    mix(b"V");
                    mix(&process.raw().to_be_bytes());
                    mix(value);
                }
                TraceEventKind::Knowledge {
                    process,
                    received,
                    moment,
                } => {
                    mix(b"K");
                    mix(&process.raw().to_be_bytes());
                    mix(&[moment.tag()]);
                    mix(&(received.len() as u64).to_be_bytes());
                    for p in received {
                        mix(&p.raw().to_be_bytes());
                    }
                }
            }
        }
        hash
    }
}

/// A cloneable handle to a send log filled in by a [`RecordingTamper`].
#[derive(Debug, Clone, Default)]
pub struct SendLog {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
}

impl SendLog {
    /// An empty log.
    pub fn new() -> Self {
        SendLog::default()
    }

    /// Drains the recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.lock().expect("send log poisoned"))
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("send log poisoned").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`Tamper`] that records every send into a [`SendLog`], delegating the
/// actual fate decision to an optional inner tamper (identity when absent).
/// Install it with `Runtime::set_tamper` to turn any run into a traced run.
pub struct RecordingTamper<M> {
    log: SendLog,
    inner: Option<Box<dyn Tamper<M>>>,
}

impl<M> RecordingTamper<M> {
    /// Records into `log`; `inner` (if any) still rules on message fates.
    pub fn new(log: SendLog, inner: Option<Box<dyn Tamper<M>>>) -> Self {
        RecordingTamper { log, inner }
    }
}

impl<M: Send> Tamper<M> for RecordingTamper<M> {
    fn disposition(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        label: &'static str,
        now: Time,
    ) -> Fate {
        let fate = match &mut self.inner {
            Some(t) => t.disposition(from, to, label, now),
            None => Fate::Deliver,
        };
        self.log
            .inner
            .lock()
            .expect("send log poisoned")
            .push(TraceEvent {
                time: now,
                kind: TraceEventKind::Sent {
                    from,
                    to,
                    label,
                    dropped: fate == Fate::Drop,
                },
            });
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::TamperSpec;
    use cupft_graph::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    fn sent(time: Time, from: u64, to: u64) -> TraceEvent {
        TraceEvent {
            time,
            kind: TraceEventKind::Sent {
                from: p(from),
                to: p(to),
                label: "X",
                dropped: false,
            },
        }
    }

    fn delivered(time: Time, from: u64, to: u64) -> TraceEvent {
        TraceEvent {
            time,
            kind: TraceEventKind::Delivered {
                from: p(from),
                to: p(to),
                label: "X",
            },
        }
    }

    fn decided(time: Time, process: u64, value: &[u8]) -> TraceEvent {
        TraceEvent {
            time,
            kind: TraceEventKind::Decided {
                process: p(process),
                value: value.to_vec(),
            },
        }
    }

    #[test]
    fn assemble_orders_by_time_then_kind() {
        let trace = ExecutionTrace::assemble(
            vec![sent(0, 1, 2), sent(5, 2, 1)],
            vec![delivered(5, 1, 2)],
            vec![decided(5, 1, b"v")],
        );
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.events[0], sent(0, 1, 2));
        // at t=5: Sent before Delivered before Decided
        assert_eq!(trace.events[1], sent(5, 2, 1));
        assert_eq!(trace.events[2], delivered(5, 1, 2));
        assert_eq!(trace.events[3], decided(5, 1, b"v"));
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = ExecutionTrace::assemble(vec![sent(0, 1, 2)], vec![], vec![]);
        let b = ExecutionTrace::assemble(vec![sent(0, 1, 2)], vec![], vec![]);
        let c = ExecutionTrace::assemble(vec![sent(0, 1, 3)], vec![], vec![]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(ExecutionTrace::default().fingerprint(), a.fingerprint());
    }

    #[test]
    fn decisions_iterator_filters() {
        let trace = ExecutionTrace::assemble(
            vec![sent(0, 1, 2)],
            vec![delivered(3, 1, 2)],
            vec![decided(9, 1, b"v"), decided(9, 2, b"v")],
        );
        let d: Vec<_> = trace.decisions().collect();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (9, p(1), b"v".as_slice()));
    }

    #[test]
    fn knowledge_samples_merge_and_fingerprint() {
        let sample = |time, proc: u64, ids: [u64; 2], moment| TraceEvent {
            time,
            kind: TraceEventKind::Knowledge {
                process: p(proc),
                received: process_set(ids),
                moment,
            },
        };
        let base = ExecutionTrace::assemble(vec![sent(5, 1, 2)], vec![], vec![decided(5, 1, b"v")]);
        let trace = base
            .clone()
            .with_knowledge(vec![sample(5, 1, [1, 2], KnowledgeMoment::Final)]);
        // Equal-time knowledge sorts after sends and decisions.
        assert!(matches!(
            trace.events.last().unwrap().kind,
            TraceEventKind::Knowledge { .. }
        ));
        let k: Vec<_> = trace.knowledge().collect();
        assert_eq!(k.len(), 1);
        assert_eq!(k[0].1, p(1));
        assert_eq!(k[0].3, KnowledgeMoment::Final);
        // Samples change the fingerprint; moment and contents both count.
        assert_ne!(trace.fingerprint(), base.fingerprint());
        let crash =
            base.clone()
                .with_knowledge(vec![sample(5, 1, [1, 2], KnowledgeMoment::AtCrash)]);
        assert_ne!(trace.fingerprint(), crash.fingerprint());
        let widened = base.with_knowledge(vec![sample(5, 1, [1, 3], KnowledgeMoment::Final)]);
        assert_ne!(trace.fingerprint(), widened.fingerprint());
    }

    #[test]
    fn recording_tamper_logs_and_delegates() {
        let log = SendLog::new();
        let inner: Box<dyn Tamper<u32>> = TamperSpec::DropFrom {
            senders: process_set([4]),
        }
        .build();
        let mut rec = RecordingTamper::new(log.clone(), Some(inner));
        assert_eq!(rec.disposition(p(1), p(2), "X", 10), Fate::Deliver);
        assert_eq!(rec.disposition(p(4), p(2), "X", 11), Fate::Drop);
        let events = log.take();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[1].kind,
            TraceEventKind::Sent { dropped: true, .. }
        ));
        assert!(log.is_empty());
    }
}
