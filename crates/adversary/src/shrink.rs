//! Deterministic counterexample shrinking.
//!
//! Given a fault [`Assignment`] whose execution violates some invariant,
//! [`shrink`] searches for a *minimal* failing variant: it repeatedly
//! tries strictly smaller rewrites — dropping whole Byzantine processes,
//! then applying [`StrategySpec::simplifications`] per process — and
//! greedily keeps the first rewrite the caller's oracle still judges
//! failing. Candidates are generated in a fixed order and every accepted
//! step strictly decreases [`assignment_size`], so the search is
//! deterministic and terminates; re-running it on the same inputs yields
//! the same minimum and the same attempt count.
//!
//! The oracle is a plain closure (`&[(ProcessId, StrategySpec)] -> bool`)
//! so this module stays independent of how executions are produced —
//! `cupft_core` wires it to "re-run the scenario, record the trace, ask
//! the invariant checker".

use cupft_graph::ProcessId;

use crate::spec::StrategySpec;

/// A fault assignment: which processes are Byzantine, and what each runs.
pub type Assignment = Vec<(ProcessId, StrategySpec)>;

/// The shrinker's size metric: strategy-tree nodes plus one per entry, so
/// both "fewer faulty processes" and "simpler strategy" are progress.
pub fn assignment_size(assignment: &Assignment) -> usize {
    assignment.iter().map(|(_, s)| 1 + s.size()).sum()
}

/// Outcome of a shrink search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkOutcome {
    /// The minimal failing assignment found.
    pub minimal: Assignment,
    /// Accepted rewrite steps (0 = the input was already minimal).
    pub steps: usize,
    /// Oracle invocations spent on candidates (excludes the initial
    /// confirmation run).
    pub attempts: usize,
}

impl ShrinkOutcome {
    /// Whether the search made the assignment strictly smaller.
    pub fn shrank(&self) -> bool {
        self.steps > 0
    }
}

/// The strictly smaller candidates of `assignment`, in the deterministic
/// order the shrinker tries them: entry removals first (front to back),
/// then per-entry spec simplifications.
pub fn candidates(assignment: &Assignment) -> Vec<Assignment> {
    let mut out = Vec::new();
    for i in 0..assignment.len() {
        let mut smaller = assignment.clone();
        smaller.remove(i);
        out.push(smaller);
    }
    for (i, (id, spec)) in assignment.iter().enumerate() {
        for simpler in spec.simplifications() {
            let mut rewritten = assignment.clone();
            rewritten[i] = (*id, simpler);
            out.push(rewritten);
        }
    }
    out
}

/// Greedily minimizes a failing assignment under `still_fails`.
///
/// `still_fails` must be a deterministic predicate ("this assignment's
/// execution still violates the invariant of interest"); it is *not*
/// required to be monotone — the shrinker simply keeps the first smaller
/// candidate that still fails and restarts from it.
///
/// # Panics
///
/// Panics if `still_fails(&initial)` is `false`: shrinking a passing case
/// is a caller bug that would otherwise "minimize" to garbage silently.
pub fn shrink(
    initial: Assignment,
    still_fails: &mut dyn FnMut(&Assignment) -> bool,
) -> ShrinkOutcome {
    assert!(
        still_fails(&initial),
        "shrink() requires a failing initial assignment"
    );
    let mut current = initial;
    let mut steps = 0;
    let mut attempts = 0;
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            debug_assert!(assignment_size(&candidate) < assignment_size(&current));
            attempts += 1;
            if still_fails(&candidate) {
                current = candidate;
                steps += 1;
                improved = true;
                break;
            }
        }
        if !improved {
            return ShrinkOutcome {
                minimal: current,
                steps,
                attempts,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    fn composite() -> StrategySpec {
        StrategySpec::TargetSubset {
            targets: process_set([1]),
            inner: Box::new(StrategySpec::FakePd {
                claimed: process_set([1, 2]),
            }),
        }
    }

    #[test]
    fn size_metric_counts_entries_and_nodes() {
        assert_eq!(assignment_size(&vec![]), 0);
        assert_eq!(assignment_size(&vec![(p(4), StrategySpec::Silent)]), 2);
        assert_eq!(assignment_size(&vec![(p(4), composite())]), 4);
    }

    #[test]
    fn candidates_are_strictly_smaller() {
        let a: Assignment = vec![(p(4), composite()), (p(5), StrategySpec::Silent)];
        let cs = candidates(&a);
        assert!(!cs.is_empty());
        for c in &cs {
            assert!(assignment_size(c) < assignment_size(&a));
        }
        // removals come first
        assert_eq!(cs[0], vec![(p(5), StrategySpec::Silent)]);
    }

    #[test]
    fn shrinks_to_single_silent_when_any_fault_fails() {
        // Oracle: fails whenever process 4 is faulty at all.
        let mut oracle = |a: &Assignment| a.iter().any(|(id, _)| *id == p(4));
        let outcome = shrink(
            vec![(p(4), composite()), (p(5), StrategySpec::Silent)],
            &mut oracle,
        );
        assert_eq!(outcome.minimal, vec![(p(4), StrategySpec::Silent)]);
        assert!(outcome.shrank());
        // already-minimal input returns unchanged with 0 steps
        let again = shrink(outcome.minimal.clone(), &mut oracle);
        assert_eq!(again.minimal, outcome.minimal);
        assert_eq!(again.steps, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut oracle = |a: &Assignment| {
                // fails while process 4 runs any FakePd-containing strategy
                fn has_fake(s: &StrategySpec) -> bool {
                    match s {
                        StrategySpec::FakePd { .. } => true,
                        StrategySpec::DelayRelease { inner, .. }
                        | StrategySpec::TargetSubset { inner, .. } => has_fake(inner),
                        StrategySpec::FlipAfter { before, after, .. } => {
                            has_fake(before) || has_fake(after)
                        }
                        _ => false,
                    }
                }
                a.iter().any(|(id, s)| *id == p(4) && has_fake(s))
            };
            shrink(
                vec![
                    (
                        p(4),
                        StrategySpec::DelayRelease {
                            until: 100,
                            inner: Box::new(composite()),
                        },
                    ),
                    (p(7), StrategySpec::Silent),
                ],
                &mut oracle,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(
            a.minimal,
            vec![(
                p(4),
                StrategySpec::FakePd {
                    claimed: process_set([1, 2])
                }
            )]
        );
    }

    #[test]
    #[should_panic(expected = "failing initial assignment")]
    fn passing_input_panics() {
        let mut oracle = |_: &Assignment| false;
        shrink(vec![(p(4), StrategySpec::Silent)], &mut oracle);
    }
}
