//! Post-hoc consensus-invariant checking over execution traces.
//!
//! The paper's four properties (§II-B) rephrased as trace predicates:
//!
//! * **Agreement** — no two correct processes decide differently;
//! * **Validity** — every decided value was proposed by some process (or
//!   legitimately injected by an equivocating leader);
//! * **Integrity** — no correct process decides twice;
//! * **Termination-by-bound** — every correct process decides within the
//!   experiment's bound (the checkable shadow of Termination: a finite
//!   trace cannot certify "eventually", only "by the horizon").
//!
//! The checker is pure: it never re-runs anything, it reads the
//! [`ExecutionTrace`] a recorder produced. That separation is what lets
//! the shrinker re-judge candidate executions cheaply and deterministically.

use std::collections::{BTreeMap, BTreeSet};

use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::Time;

use crate::trace::ExecutionTrace;

/// A consensus property checkable over a finite trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// No two correct processes decided different values.
    Agreement,
    /// Every decided value is in the allowed set.
    Validity,
    /// No correct process decided more than once.
    Integrity,
    /// Every correct process decided at a time `<=` the bound.
    TerminationBy(Time),
}

/// One invariant broken by a trace, with human-readable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The broken invariant.
    pub invariant: Invariant,
    /// What the trace shows.
    pub detail: String,
}

/// Checks a trace against the §II-B properties for a given correct set.
#[derive(Debug, Clone)]
pub struct TraceChecker {
    correct: ProcessSet,
    allowed: BTreeSet<Vec<u8>>,
    termination_bound: Option<Time>,
}

impl TraceChecker {
    /// A checker for the given correct processes and allowed value set.
    /// Termination is unchecked until a bound is set.
    pub fn new(correct: ProcessSet, allowed: BTreeSet<Vec<u8>>) -> Self {
        TraceChecker {
            correct,
            allowed,
            termination_bound: None,
        }
    }

    /// Also require every correct process to decide by `bound`.
    pub fn with_termination_bound(mut self, bound: Time) -> Self {
        self.termination_bound = Some(bound);
        self
    }

    /// The correct processes this checker judges.
    pub fn correct(&self) -> &ProcessSet {
        &self.correct
    }

    /// Every violation the trace exhibits, in deterministic order
    /// (agreement, validity, integrity, termination).
    pub fn check(&self, trace: &ExecutionTrace) -> Vec<Violation> {
        let mut violations = Vec::new();

        // Decisions of correct processes, in trace order.
        let mut decided: BTreeMap<ProcessId, Vec<(Time, Vec<u8>)>> = BTreeMap::new();
        for (time, process, value) in trace.decisions() {
            if self.correct.contains(&process) {
                decided
                    .entry(process)
                    .or_default()
                    .push((time, value.to_vec()));
            }
        }

        let distinct: BTreeSet<&[u8]> = decided
            .values()
            .flat_map(|d| d.iter().map(|(_, v)| v.as_slice()))
            .collect();
        if distinct.len() > 1 {
            let values: Vec<String> = distinct
                .iter()
                .map(|v| String::from_utf8_lossy(v).into_owned())
                .collect();
            violations.push(Violation {
                invariant: Invariant::Agreement,
                detail: format!(
                    "correct processes decided {} distinct values: {values:?}",
                    distinct.len()
                ),
            });
        }

        for v in &distinct {
            if !self.allowed.contains(*v) {
                violations.push(Violation {
                    invariant: Invariant::Validity,
                    detail: format!(
                        "decided value {:?} was never proposed",
                        String::from_utf8_lossy(v)
                    ),
                });
            }
        }

        for (process, decisions) in &decided {
            if decisions.len() > 1 {
                violations.push(Violation {
                    invariant: Invariant::Integrity,
                    detail: format!("process {process} decided {} times", decisions.len()),
                });
            }
        }

        if let Some(bound) = self.termination_bound {
            for p in &self.correct {
                let by_bound = decided
                    .get(p)
                    .is_some_and(|d| d.iter().any(|(t, _)| *t <= bound));
                if !by_bound {
                    violations.push(Violation {
                        invariant: Invariant::TerminationBy(bound),
                        detail: format!("process {p} undecided at the bound"),
                    });
                }
            }
        }

        violations
    }

    /// Whether the trace breaks a specific invariant (ignoring the bound
    /// parameter for [`Invariant::TerminationBy`]).
    pub fn violates(&self, trace: &ExecutionTrace, invariant: Invariant) -> bool {
        self.check(trace)
            .iter()
            .any(|v| match (v.invariant, invariant) {
                (Invariant::TerminationBy(_), Invariant::TerminationBy(_)) => true,
                (a, b) => a == b,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceEventKind};
    use cupft_graph::process_set;

    fn decided(time: Time, process: u64, value: &[u8]) -> TraceEvent {
        TraceEvent {
            time,
            kind: TraceEventKind::Decided {
                process: ProcessId::new(process),
                value: value.to_vec(),
            },
        }
    }

    fn checker() -> TraceChecker {
        TraceChecker::new(
            process_set([1, 2]),
            [b"a".to_vec(), b"b".to_vec()].into_iter().collect(),
        )
    }

    #[test]
    fn clean_trace_passes() {
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(12, 2, b"a")],
        );
        assert!(checker().check(&trace).is_empty());
    }

    #[test]
    fn disagreement_is_flagged() {
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(12, 2, b"b")],
        );
        let violations = checker().check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::Agreement);
        assert!(checker().violates(&trace, Invariant::Agreement));
        assert!(!checker().violates(&trace, Invariant::Validity));
    }

    #[test]
    fn byzantine_decisions_do_not_count() {
        // process 9 is not correct: its "decision" is ignored
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(11, 9, b"evil")],
        );
        assert!(checker().check(&trace).is_empty());
    }

    #[test]
    fn invalid_value_is_flagged() {
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"zz"), decided(11, 2, b"zz")],
        );
        let violations = checker().check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::Validity);
    }

    #[test]
    fn double_decide_is_flagged() {
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![
                decided(10, 1, b"a"),
                decided(11, 1, b"a"),
                decided(12, 2, b"a"),
            ],
        );
        let violations = checker().check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::Integrity);
    }

    #[test]
    fn termination_bound_is_checked_when_set() {
        let trace = ExecutionTrace::assemble(vec![], vec![], vec![decided(10, 1, b"a")]);
        // no bound: no termination verdict
        assert!(checker().check(&trace).is_empty());
        // bound: process 2 never decided, process 1 decided in time
        let violations = checker().with_termination_bound(50).check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::TerminationBy(50));
        assert!(violations[0].detail.contains('2'));
        // decided but too late also violates
        let late = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(99, 2, b"a")],
        );
        let violations = checker().with_termination_bound(50).check(&late);
        assert_eq!(violations.len(), 1);
    }
}
