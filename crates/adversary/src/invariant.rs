//! Post-hoc consensus-invariant checking over execution traces.
//!
//! The paper's four properties (§II-B) rephrased as trace predicates:
//!
//! * **Agreement** — no two correct processes decide differently;
//! * **Validity** — every decided value was proposed by some process (or
//!   legitimately injected by an equivocating leader);
//! * **Integrity** — no correct process decides twice;
//! * **Termination-by-bound** — every correct process decides within the
//!   experiment's bound (the checkable shadow of Termination: a finite
//!   trace cannot certify "eventually", only "by the horizon").
//!
//! The checker is pure: it never re-runs anything, it reads the
//! [`ExecutionTrace`] a recorder produced. That separation is what lets
//! the shrinker re-judge candidate executions cheaply and deterministically.
//!
//! Under churn the paper's properties are quantified over a set that no
//! longer exists ("all correct processes" — some left, some arrived
//! mid-run), so a [`ChurnContext`] attaches *weakened* variants: churn
//! agreement over every process that ever decided, join convergence for
//! late joiners, and recovery consistency for crash-rejoiners. The
//! static-universe checks keep running unchanged alongside them.

use std::collections::{BTreeMap, BTreeSet};

use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::Time;

use crate::trace::{ExecutionTrace, KnowledgeMoment};

/// A consensus property checkable over a finite trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// No two correct processes decided different values.
    Agreement,
    /// Every decided value is in the allowed set.
    Validity,
    /// No correct process decided more than once.
    Integrity,
    /// Every correct process decided at a time `<=` the bound.
    TerminationBy(Time),
    /// Weakened agreement under churn: any two processes that *ever*
    /// decided — including ones that departed afterwards — decided the
    /// same value. (Plain [`Invariant::Agreement`] quantifies over the
    /// static correct set; this variant quantifies over deciders.)
    ChurnAgreement,
    /// Every late joiner still present at the end of the run converged to
    /// (at least) the reference `S_PD` knowledge the stable members share.
    JoinConvergence,
    /// A crash-rejoining node never regresses its knowledge view across
    /// the recovery — its restored and final `S_received` contain
    /// everything it had received before the crash — and never
    /// contradicts a decision it made before crashing.
    RecoveryConsistency,
}

/// One invariant broken by a trace, with human-readable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The broken invariant.
    pub invariant: Invariant,
    /// What the trace shows.
    pub detail: String,
}

/// What a churn-aware check needs to know about the schedule that ran:
/// who joined, who left, who crash-recovered, and what knowledge the
/// stable membership converged to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnContext {
    /// Nodes that joined late.
    pub joiners: ProcessSet,
    /// Nodes that departed silently (exempt from convergence demands).
    pub leavers: ProcessSet,
    /// Nodes that crashed and rejoined.
    pub recoverers: ProcessSet,
    /// The `S_received` knowledge the stable members share — the fixpoint
    /// joiners must reach. Runners typically compute it as the
    /// intersection of the stable members' final knowledge samples.
    pub reference_knowledge: ProcessSet,
}

/// Checks a trace against the §II-B properties for a given correct set.
#[derive(Debug, Clone)]
pub struct TraceChecker {
    correct: ProcessSet,
    allowed: BTreeSet<Vec<u8>>,
    termination_bound: Option<Time>,
    churn: Option<ChurnContext>,
}

impl TraceChecker {
    /// A checker for the given correct processes and allowed value set.
    /// Termination is unchecked until a bound is set.
    pub fn new(correct: ProcessSet, allowed: BTreeSet<Vec<u8>>) -> Self {
        TraceChecker {
            correct,
            allowed,
            termination_bound: None,
            churn: None,
        }
    }

    /// Also require every correct process to decide by `bound`.
    pub fn with_termination_bound(mut self, bound: Time) -> Self {
        self.termination_bound = Some(bound);
        self
    }

    /// Also check the weakened churn invariants against `context`
    /// (churn-agreement, join-convergence, recovery-consistency).
    pub fn with_churn(mut self, context: ChurnContext) -> Self {
        self.churn = Some(context);
        self
    }

    /// The correct processes this checker judges.
    pub fn correct(&self) -> &ProcessSet {
        &self.correct
    }

    /// Every violation the trace exhibits, in deterministic order
    /// (agreement, validity, integrity, termination).
    pub fn check(&self, trace: &ExecutionTrace) -> Vec<Violation> {
        let mut violations = Vec::new();

        // Decisions of correct processes, in trace order.
        let mut decided: BTreeMap<ProcessId, Vec<(Time, Vec<u8>)>> = BTreeMap::new();
        for (time, process, value) in trace.decisions() {
            if self.correct.contains(&process) {
                decided
                    .entry(process)
                    .or_default()
                    .push((time, value.to_vec()));
            }
        }

        let distinct: BTreeSet<&[u8]> = decided
            .values()
            .flat_map(|d| d.iter().map(|(_, v)| v.as_slice()))
            .collect();
        if distinct.len() > 1 {
            let values: Vec<String> = distinct
                .iter()
                .map(|v| String::from_utf8_lossy(v).into_owned())
                .collect();
            violations.push(Violation {
                invariant: Invariant::Agreement,
                detail: format!(
                    "correct processes decided {} distinct values: {values:?}",
                    distinct.len()
                ),
            });
        }

        for v in &distinct {
            if !self.allowed.contains(*v) {
                violations.push(Violation {
                    invariant: Invariant::Validity,
                    detail: format!(
                        "decided value {:?} was never proposed",
                        String::from_utf8_lossy(v)
                    ),
                });
            }
        }

        for (process, decisions) in &decided {
            if decisions.len() > 1 {
                violations.push(Violation {
                    invariant: Invariant::Integrity,
                    detail: format!("process {process} decided {} times", decisions.len()),
                });
            }
        }

        if let Some(bound) = self.termination_bound {
            for p in &self.correct {
                let by_bound = decided
                    .get(p)
                    .is_some_and(|d| d.iter().any(|(t, _)| *t <= bound));
                if !by_bound {
                    violations.push(Violation {
                        invariant: Invariant::TerminationBy(bound),
                        detail: format!("process {p} undecided at the bound"),
                    });
                }
            }
        }

        if let Some(ctx) = self.churn.clone() {
            self.check_churn(&ctx, trace, &mut violations);
        }

        violations
    }

    /// The weakened churn checks, appended in deterministic order
    /// (churn-agreement, join-convergence, recovery-consistency).
    fn check_churn(
        &self,
        ctx: &ChurnContext,
        trace: &ExecutionTrace,
        violations: &mut Vec<Violation>,
    ) {
        // Churn agreement quantifies over every decider, departed or not —
        // the correct-set filter of the static check is deliberately gone.
        let mut all_decided: BTreeMap<ProcessId, BTreeSet<Vec<u8>>> = BTreeMap::new();
        for (_, process, value) in trace.decisions() {
            all_decided
                .entry(process)
                .or_default()
                .insert(value.to_vec());
        }
        let distinct: BTreeSet<&Vec<u8>> = all_decided.values().flatten().collect();
        if distinct.len() > 1 {
            let values: Vec<String> = distinct
                .iter()
                .map(|v| String::from_utf8_lossy(v).into_owned())
                .collect();
            violations.push(Violation {
                invariant: Invariant::ChurnAgreement,
                detail: format!(
                    "processes that ever decided span {} distinct values: {values:?}",
                    distinct.len()
                ),
            });
        }

        // Knowledge samples per (process, moment); a later sample for the
        // same key supersedes an earlier one.
        let mut samples: BTreeMap<(ProcessId, KnowledgeMoment), ProcessSet> = BTreeMap::new();
        for (_, process, received, moment) in trace.knowledge() {
            samples.insert((process, moment), received.clone());
        }

        for j in &ctx.joiners {
            if ctx.leavers.contains(j) {
                continue; // joined, then departed: exempt from convergence
            }
            match samples.get(&(*j, KnowledgeMoment::Final)) {
                Some(final_k) => {
                    let missing: ProcessSet = ctx
                        .reference_knowledge
                        .iter()
                        .copied()
                        .filter(|p| !final_k.contains(p))
                        .collect();
                    if !missing.is_empty() {
                        violations.push(Violation {
                            invariant: Invariant::JoinConvergence,
                            detail: format!(
                                "joiner {j} never received the PDs of {}",
                                crate::fmt_process_set(&missing)
                            ),
                        });
                    }
                }
                None => violations.push(Violation {
                    invariant: Invariant::JoinConvergence,
                    detail: format!("joiner {j} has no final knowledge sample"),
                }),
            }
        }

        for r in &ctx.recoverers {
            let Some(crash) = samples.get(&(*r, KnowledgeMoment::AtCrash)) else {
                continue; // never reached its crash point in this trace
            };
            for (moment, what) in [
                (KnowledgeMoment::AtRecovery, "restored"),
                (KnowledgeMoment::Final, "final"),
            ] {
                if let Some(later) = samples.get(&(*r, moment)) {
                    let lost: ProcessSet = crash
                        .iter()
                        .copied()
                        .filter(|p| !later.contains(p))
                        .collect();
                    if !lost.is_empty() {
                        violations.push(Violation {
                            invariant: Invariant::RecoveryConsistency,
                            detail: format!(
                                "rejoiner {r}'s {what} view regressed: lost {}",
                                crate::fmt_process_set(&lost)
                            ),
                        });
                    }
                }
            }
            if all_decided.get(r).is_some_and(|vs| vs.len() > 1) {
                violations.push(Violation {
                    invariant: Invariant::RecoveryConsistency,
                    detail: format!("rejoiner {r} contradicted its pre-crash decision"),
                });
            }
        }
    }

    /// Whether the trace breaks a specific invariant (ignoring the bound
    /// parameter for [`Invariant::TerminationBy`]).
    pub fn violates(&self, trace: &ExecutionTrace, invariant: Invariant) -> bool {
        self.check(trace)
            .iter()
            .any(|v| match (v.invariant, invariant) {
                (Invariant::TerminationBy(_), Invariant::TerminationBy(_)) => true,
                (a, b) => a == b,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceEventKind};
    use cupft_graph::process_set;

    fn decided(time: Time, process: u64, value: &[u8]) -> TraceEvent {
        TraceEvent {
            time,
            kind: TraceEventKind::Decided {
                process: ProcessId::new(process),
                value: value.to_vec(),
            },
        }
    }

    fn checker() -> TraceChecker {
        TraceChecker::new(
            process_set([1, 2]),
            [b"a".to_vec(), b"b".to_vec()].into_iter().collect(),
        )
    }

    #[test]
    fn clean_trace_passes() {
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(12, 2, b"a")],
        );
        assert!(checker().check(&trace).is_empty());
    }

    #[test]
    fn disagreement_is_flagged() {
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(12, 2, b"b")],
        );
        let violations = checker().check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::Agreement);
        assert!(checker().violates(&trace, Invariant::Agreement));
        assert!(!checker().violates(&trace, Invariant::Validity));
    }

    #[test]
    fn byzantine_decisions_do_not_count() {
        // process 9 is not correct: its "decision" is ignored
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(11, 9, b"evil")],
        );
        assert!(checker().check(&trace).is_empty());
    }

    #[test]
    fn invalid_value_is_flagged() {
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"zz"), decided(11, 2, b"zz")],
        );
        let violations = checker().check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::Validity);
    }

    #[test]
    fn double_decide_is_flagged() {
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![
                decided(10, 1, b"a"),
                decided(11, 1, b"a"),
                decided(12, 2, b"a"),
            ],
        );
        let violations = checker().check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::Integrity);
    }

    fn knowledge(time: Time, process: u64, ids: &[u64], moment: KnowledgeMoment) -> TraceEvent {
        TraceEvent {
            time,
            kind: TraceEventKind::Knowledge {
                process: ProcessId::new(process),
                received: ids.iter().map(|&n| ProcessId::new(n)).collect(),
                moment,
            },
        }
    }

    fn churn_checker(ctx: ChurnContext) -> TraceChecker {
        checker().with_churn(ctx)
    }

    #[test]
    fn churn_agreement_counts_departed_deciders() {
        // Process 9 is outside the correct set (it departed mid-run), but
        // its decision still counts for the weakened agreement.
        let trace = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(11, 9, b"b")],
        );
        let plain = checker().check(&trace);
        assert!(plain.is_empty(), "static agreement ignores process 9");
        let ctx = ChurnContext {
            leavers: process_set([9]),
            ..ChurnContext::default()
        };
        let violations = churn_checker(ctx.clone()).check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::ChurnAgreement);
        assert!(churn_checker(ctx).violates(&trace, Invariant::ChurnAgreement));
    }

    #[test]
    fn join_convergence_requires_reference_knowledge() {
        let ctx = ChurnContext {
            joiners: process_set([2]),
            reference_knowledge: process_set([1, 2, 3]),
            ..ChurnContext::default()
        };
        // Converged joiner: clean.
        let good = ExecutionTrace::assemble(vec![], vec![], vec![decided(10, 1, b"a")])
            .with_knowledge(vec![knowledge(50, 2, &[1, 2, 3], KnowledgeMoment::Final)]);
        assert!(churn_checker(ctx.clone()).check(&good).is_empty());
        // Missing PDs: flagged, with the gap named.
        let short = ExecutionTrace::assemble(vec![], vec![], vec![decided(10, 1, b"a")])
            .with_knowledge(vec![knowledge(50, 2, &[1, 2], KnowledgeMoment::Final)]);
        let violations = churn_checker(ctx.clone()).check(&short);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::JoinConvergence);
        assert!(violations[0].detail.contains("{3}"));
        // No sample at all: also flagged.
        let missing = ExecutionTrace::assemble(vec![], vec![], vec![decided(10, 1, b"a")]);
        assert!(churn_checker(ctx.clone()).violates(&missing, Invariant::JoinConvergence));
        // A joiner that later departed is exempt.
        let departed = ChurnContext {
            leavers: process_set([2]),
            ..ctx
        };
        assert!(churn_checker(departed).check(&missing).is_empty());
    }

    #[test]
    fn recovery_consistency_flags_view_regression() {
        let ctx = ChurnContext {
            recoverers: process_set([1]),
            ..ChurnContext::default()
        };
        // Clean recovery: restored and final views contain the crash view.
        let good = ExecutionTrace::assemble(vec![], vec![], vec![]).with_knowledge(vec![
            knowledge(20, 1, &[1, 2, 3], KnowledgeMoment::AtCrash),
            knowledge(40, 1, &[1, 2, 3], KnowledgeMoment::AtRecovery),
            knowledge(90, 1, &[1, 2, 3, 4], KnowledgeMoment::Final),
        ]);
        assert!(churn_checker(ctx.clone()).check(&good).is_empty());
        // Broken recovery: the restored view lost PDs it had at the crash.
        let regressed = ExecutionTrace::assemble(vec![], vec![], vec![]).with_knowledge(vec![
            knowledge(20, 1, &[1, 2, 3], KnowledgeMoment::AtCrash),
            knowledge(40, 1, &[1], KnowledgeMoment::AtRecovery),
            knowledge(90, 1, &[1, 2, 3], KnowledgeMoment::Final),
        ]);
        let violations = churn_checker(ctx.clone()).check(&regressed);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::RecoveryConsistency);
        assert!(violations[0].detail.contains("restored"));
        // Contradicting the pre-crash decision is also flagged.
        let contradicted = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(60, 1, b"b")],
        )
        .with_knowledge(vec![knowledge(20, 1, &[1], KnowledgeMoment::AtCrash)]);
        assert!(churn_checker(ctx.clone()).violates(&contradicted, Invariant::RecoveryConsistency));
        // A recoverer with no crash sample (never reached the crash) is
        // vacuously consistent.
        let vacuous = ExecutionTrace::assemble(vec![], vec![], vec![]);
        assert!(churn_checker(ctx).check(&vacuous).is_empty());
    }

    #[test]
    fn termination_bound_is_checked_when_set() {
        let trace = ExecutionTrace::assemble(vec![], vec![], vec![decided(10, 1, b"a")]);
        // no bound: no termination verdict
        assert!(checker().check(&trace).is_empty());
        // bound: process 2 never decided, process 1 decided in time
        let violations = checker().with_termination_bound(50).check(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::TerminationBy(50));
        assert!(violations[0].detail.contains('2'));
        // decided but too late also violates
        let late = ExecutionTrace::assemble(
            vec![],
            vec![],
            vec![decided(10, 1, b"a"), decided(99, 2, b"a")],
        );
        let violations = checker().with_termination_bound(50).check(&late);
        assert_eq!(violations.len(), 1);
    }
}
