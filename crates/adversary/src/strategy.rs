//! The composable Byzantine-strategy abstraction.
//!
//! A [`Strategy`] is what a faulty process *does*: it receives the same
//! event hooks as a [`cupft_net::Actor`] but is a free-standing, composable
//! value — combinators wrap strategies in other strategies, so "serve a
//! fabricated PD, but only to processes 1–3, and only after tick 400" is
//! three nested values rather than a new hand-written actor.
//!
//! [`StrategyActor`] adapts any boxed strategy into an `Actor` so both
//! runtimes can execute it unchanged.
//!
//! The adversary here is *static* (paper §II-A): a strategy is fixed
//! before the run. What it may do is bounded by the model — it can send
//! anything expressible in the message type to anyone, stay silent, or
//! misorder its own traffic, but signatures (enforced by receivers, not by
//! this layer) stop it from speaking for correct processes.

use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::{Actor, Context, Time, TimerKind};

/// What a faulty process does, hook by hook.
///
/// Implementations must be deterministic state machines (like actors), so
/// simulator runs replay identically and recorded traces are stable.
pub trait Strategy<M>: Send + std::fmt::Debug {
    /// Compact display name, used in suite labels and shrink reports.
    fn name(&self) -> String;

    /// Invoked once before any delivery.
    fn on_start(&mut self, ctx: &mut Context<M>) {
        let _ = ctx;
    }

    /// Invoked per delivered message.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<M>);

    /// Invoked when a timer this strategy set fires.
    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Context<M>) {
        let _ = (kind, ctx);
    }
}

/// Adapter: a [`Strategy`] plus an identity is an [`Actor`].
pub struct StrategyActor<M> {
    id: ProcessId,
    strategy: Box<dyn Strategy<M>>,
}

impl<M> StrategyActor<M> {
    /// Binds `strategy` to process `id`.
    pub fn new(id: ProcessId, strategy: Box<dyn Strategy<M>>) -> Self {
        StrategyActor { id, strategy }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &dyn Strategy<M> {
        self.strategy.as_ref()
    }
}

impl<M> std::fmt::Debug for StrategyActor<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyActor")
            .field("id", &self.id)
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl<M: Send + 'static> Actor<M> for StrategyActor<M> {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<M>) {
        self.strategy.on_start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<M>) {
        self.strategy.on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Context<M>) {
        self.strategy.on_timer(kind, ctx);
    }
}

/// Runs `f` against a scratch context and merges the scratch effects back
/// into `ctx` through `keep_send` (timers and halt always pass through).
///
/// This is how wrapper combinators observe and filter an inner strategy's
/// sends without the inner strategy knowing it is wrapped.
fn reframe<M>(
    ctx: &mut Context<M>,
    f: impl FnOnce(&mut Context<M>),
    mut keep_send: impl FnMut(ProcessId, M, &mut Context<M>),
) {
    let mut scratch = Context::new(ctx.now(), ctx.self_id());
    f(&mut scratch);
    let (sends, timers, halted) = scratch.into_effects();
    for (to, msg) in sends {
        keep_send(to, msg, ctx);
    }
    for (kind, delay) in timers {
        ctx.set_timer(kind, delay);
    }
    if halted {
        ctx.halt();
    }
}

/// The stay-silent strategy: sends nothing, ever — the adversary's
/// strongest play against knowledge connectivity (paper Figs. 1a, 2a, 2b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mute;

impl<M: Send> Strategy<M> for Mute {
    fn name(&self) -> String {
        "silent".into()
    }

    fn on_message(&mut self, _: ProcessId, _: M, _: &mut Context<M>) {}
}

/// Combinator: run `inner`, but let only messages addressed to `targets`
/// leave the process (the rest are swallowed — within the model, a
/// Byzantine process may always choose not to send).
pub struct TargetSubset<M> {
    targets: ProcessSet,
    inner: Box<dyn Strategy<M>>,
}

impl<M> TargetSubset<M> {
    /// Restricts `inner`'s sends to `targets`.
    pub fn new(targets: ProcessSet, inner: Box<dyn Strategy<M>>) -> Self {
        TargetSubset { targets, inner }
    }
}

impl<M> std::fmt::Debug for TargetSubset<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetSubset")
            .field("targets", &self.targets)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<M: Send + 'static> TargetSubset<M> {
    fn route(
        &mut self,
        ctx: &mut Context<M>,
        f: impl FnOnce(&mut dyn Strategy<M>, &mut Context<M>),
    ) {
        let (inner, targets) = (self.inner.as_mut(), &self.targets);
        reframe(
            ctx,
            |scratch| f(inner, scratch),
            |to, msg, ctx| {
                if targets.contains(&to) {
                    ctx.send(to, msg);
                }
            },
        );
    }
}

impl<M: Send + 'static> Strategy<M> for TargetSubset<M> {
    fn name(&self) -> String {
        format!(
            "target{}({})",
            crate::fmt_process_set(&self.targets),
            self.inner.name()
        )
    }

    fn on_start(&mut self, ctx: &mut Context<M>) {
        self.route(ctx, |inner, scratch| inner.on_start(scratch));
    }

    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<M>) {
        self.route(ctx, |inner, scratch| inner.on_message(from, msg, scratch));
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Context<M>) {
        self.route(ctx, |inner, scratch| inner.on_timer(kind, scratch));
    }
}

/// The reserved timer kind [`DelayRelease`] uses to wake itself at the
/// release tick. Chosen far away from `DISCOVERY_TICK` (`0xD15C`) and the
/// committee's view-timer band (`0xC0 << 32` + view).
pub const RELEASE_TICK: TimerKind = 0xAD5E_0000_0000_0000;

/// Combinator: run `inner`, but hold every message it sends before
/// `release_at` and release the whole backlog at once at `release_at`
/// (withheld-PD / late-burst attacks). After the release tick, sends pass
/// through unmodified.
pub struct DelayRelease<M> {
    release_at: Time,
    inner: Box<dyn Strategy<M>>,
    held: Vec<(ProcessId, M)>,
    armed: bool,
}

impl<M> DelayRelease<M> {
    /// Holds `inner`'s sends until `release_at`.
    pub fn new(release_at: Time, inner: Box<dyn Strategy<M>>) -> Self {
        DelayRelease {
            release_at,
            inner,
            held: Vec::new(),
            armed: false,
        }
    }

    /// Messages currently held back.
    pub fn held(&self) -> usize {
        self.held.len()
    }
}

impl<M> std::fmt::Debug for DelayRelease<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayRelease")
            .field("release_at", &self.release_at)
            .field("held", &self.held.len())
            .field("inner", &self.inner)
            .finish()
    }
}

impl<M: Send + 'static> DelayRelease<M> {
    fn route(
        &mut self,
        ctx: &mut Context<M>,
        f: impl FnOnce(&mut dyn Strategy<M>, &mut Context<M>),
    ) {
        let releasing = ctx.now() >= self.release_at;
        let held = &mut self.held;
        let inner = self.inner.as_mut();
        reframe(
            ctx,
            |scratch| f(inner, scratch),
            |to, msg, ctx| {
                if releasing {
                    ctx.send(to, msg);
                } else {
                    held.push((to, msg));
                }
            },
        );
        if !releasing && !self.armed {
            self.armed = true;
            ctx.set_timer(RELEASE_TICK, self.release_at.saturating_sub(ctx.now()));
        }
    }

    fn flush(&mut self, ctx: &mut Context<M>) {
        for (to, msg) in self.held.drain(..) {
            ctx.send(to, msg);
        }
    }
}

impl<M: Send + 'static> Strategy<M> for DelayRelease<M> {
    fn name(&self) -> String {
        format!("delay@{}({})", self.release_at, self.inner.name())
    }

    fn on_start(&mut self, ctx: &mut Context<M>) {
        self.route(ctx, |inner, scratch| inner.on_start(scratch));
    }

    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<M>) {
        self.route(ctx, |inner, scratch| inner.on_message(from, msg, scratch));
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Context<M>) {
        // RELEASE_TICK is one shared kind, so nested DelayRelease wrappers
        // all receive each other's wake-ups: flush only once our own
        // deadline has passed, and always forward the tick inward so an
        // inner DelayRelease can flush at *its* deadline (its flushed
        // sends re-enter this wrapper's hold/pass filter; leaves ignore
        // unknown kinds). Swallowing the tick here would strand an inner
        // wrapper's backlog forever.
        if kind == RELEASE_TICK && ctx.now() >= self.release_at {
            self.flush(ctx);
        }
        self.route(ctx, |inner, scratch| inner.on_timer(kind, scratch));
    }
}

/// The reserved timer kind [`FlipAfter`] uses to wake itself at its flip
/// time, so the switch happens *at* `at` rather than lazily at the next
/// delivered event.
pub const FLIP_TICK: TimerKind = 0xAD5F_0000_0000_0000;

/// Combinator: behave as `before` until time `at`, then as `after`
/// (flip-after-round: `at` = round × the protocol's tick period).
/// A wake timer is armed at `on_start`, so `after` receives its
/// `on_start` at the moment of the flip even if no traffic arrives then.
/// `before`'s internal state (timers it armed, messages a nested
/// [`DelayRelease`] still holds) is abandoned at the flip — flipping away
/// from a buffering strategy discards its backlog by design.
pub struct FlipAfter<M> {
    at: Time,
    before: Box<dyn Strategy<M>>,
    after: Box<dyn Strategy<M>>,
    switched: bool,
}

impl<M> FlipAfter<M> {
    /// Runs `before` until `at`, then `after`.
    pub fn new(at: Time, before: Box<dyn Strategy<M>>, after: Box<dyn Strategy<M>>) -> Self {
        FlipAfter {
            at,
            before,
            after,
            switched: false,
        }
    }
}

impl<M> std::fmt::Debug for FlipAfter<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlipAfter")
            .field("at", &self.at)
            .field("before", &self.before)
            .field("after", &self.after)
            .field("switched", &self.switched)
            .finish()
    }
}

impl<M: Send + 'static> FlipAfter<M> {
    fn active(&mut self, ctx: &mut Context<M>) -> &mut dyn Strategy<M> {
        if ctx.now() >= self.at {
            if !self.switched {
                self.switched = true;
                self.after.on_start(ctx);
            }
            self.after.as_mut()
        } else {
            self.before.as_mut()
        }
    }
}

impl<M: Send + 'static> Strategy<M> for FlipAfter<M> {
    fn name(&self) -> String {
        format!(
            "flip@{}[{}->{}]",
            self.at,
            self.before.name(),
            self.after.name()
        )
    }

    fn on_start(&mut self, ctx: &mut Context<M>) {
        if ctx.now() < self.at {
            ctx.set_timer(FLIP_TICK, self.at - ctx.now());
            self.before.on_start(ctx);
        } else if !self.switched {
            // already past the flip at startup: `active` latches the
            // switch and runs after.on_start — don't start it twice
            self.switched = true;
            self.after.on_start(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<M>) {
        self.active(ctx).on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Context<M>) {
        // FLIP_TICK's only job is to pull `active` at the flip time (which
        // performs the switch and `after.on_start`); it is still forwarded
        // inward — FLIP_TICK is one shared kind, and a nested FlipAfter
        // distinguishes its own deadline by the same now-vs-at check.
        // Leaves ignore unknown kinds.
        self.active(ctx).on_timer(kind, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    /// Sends `n` to 1, 2, 3 on every event.
    #[derive(Debug)]
    struct Chatter(u32);

    impl Strategy<u32> for Chatter {
        fn name(&self) -> String {
            "chatter".into()
        }
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            ctx.send_all([1, 2, 3].map(ProcessId::new), self.0);
        }
        fn on_message(&mut self, _: ProcessId, _: u32, ctx: &mut Context<u32>) {
            ctx.send_all([1, 2, 3].map(ProcessId::new), self.0);
        }
        fn on_timer(&mut self, _: TimerKind, ctx: &mut Context<u32>) {
            ctx.send_all([1, 2, 3].map(ProcessId::new), self.0);
        }
    }

    #[test]
    fn mute_sends_nothing() {
        let mut s = Mute;
        let mut ctx: Context<u32> = Context::new(0, ProcessId::new(9));
        Strategy::on_start(&mut s, &mut ctx);
        Strategy::on_message(&mut s, ProcessId::new(1), 7, &mut ctx);
        Strategy::on_timer(&mut s, 1, &mut ctx);
        assert!(ctx.queued_sends().is_empty());
        assert!(ctx.queued_timers().is_empty());
    }

    #[test]
    fn target_subset_filters_sends() {
        let mut s = TargetSubset::new(process_set([1, 3]), Box::new(Chatter(5)));
        let mut ctx: Context<u32> = Context::new(0, ProcessId::new(9));
        s.on_start(&mut ctx);
        let tos: Vec<u64> = ctx.queued_sends().iter().map(|(to, _)| to.raw()).collect();
        assert_eq!(tos, vec![1, 3]);
        assert!(s.name().contains("target{1,3}"));
    }

    #[test]
    fn delay_release_holds_then_flushes() {
        let mut s = DelayRelease::new(100, Box::new(Chatter(5)));
        let mut ctx: Context<u32> = Context::new(0, ProcessId::new(9));
        s.on_start(&mut ctx);
        assert!(ctx.queued_sends().is_empty());
        assert_eq!(s.held(), 3);
        // the wake timer was armed exactly once
        assert_eq!(ctx.queued_timers(), &[(RELEASE_TICK, 100)]);

        // a second pre-release event buffers more but does not re-arm
        let mut ctx2: Context<u32> = Context::new(50, ProcessId::new(9));
        s.on_message(ProcessId::new(1), 0, &mut ctx2);
        assert!(ctx2.queued_sends().is_empty());
        assert!(ctx2.queued_timers().is_empty());
        assert_eq!(s.held(), 6);

        // the release tick flushes the backlog (6) and is forwarded to the
        // inner strategy, which — reacting to every timer — adds 3 more;
        // real protocol leaves ignore unknown timer kinds
        let mut ctx3: Context<u32> = Context::new(100, ProcessId::new(9));
        s.on_timer(RELEASE_TICK, &mut ctx3);
        assert_eq!(ctx3.queued_sends().len(), 9);
        assert_eq!(s.held(), 0);

        // post-release traffic passes straight through
        let mut ctx4: Context<u32> = Context::new(150, ProcessId::new(9));
        s.on_message(ProcessId::new(1), 0, &mut ctx4);
        assert_eq!(ctx4.queued_sends().len(), 3);
    }

    #[test]
    fn nested_delay_release_flushes_inner_backlog() {
        // outer releases at 100, inner at 200: the inner wake-up at 200
        // must reach the inner wrapper through the outer one, and the
        // inner's flushed sends must pass the (already released) outer.
        let mut s = DelayRelease::new(100, Box::new(DelayRelease::new(200, Box::new(Chatter(5)))));
        let mut ctx: Context<u32> = Context::new(0, ProcessId::new(9));
        s.on_start(&mut ctx);
        assert!(ctx.queued_sends().is_empty());
        // outer's own tick at 100: nothing to flush (all 3 sends sit in
        // the *inner* wrapper), and the inner must not release early
        let mut ctx2: Context<u32> = Context::new(100, ProcessId::new(9));
        s.on_timer(RELEASE_TICK, &mut ctx2);
        assert!(ctx2.queued_sends().is_empty(), "inner released early");
        // inner's tick at 200: the backlog finally escapes both layers
        let mut ctx3: Context<u32> = Context::new(200, ProcessId::new(9));
        s.on_timer(RELEASE_TICK, &mut ctx3);
        assert!(
            ctx3.queued_sends().len() >= 3,
            "inner backlog was stranded: {} sends",
            ctx3.queued_sends().len()
        );
    }

    #[test]
    fn reversed_nesting_holds_inner_flush_until_outer_release() {
        // outer releases at 200, inner at 100: the inner's flush at 100
        // must be re-captured by the still-holding outer wrapper.
        let mut s = DelayRelease::new(200, Box::new(DelayRelease::new(100, Box::new(Chatter(5)))));
        let mut ctx: Context<u32> = Context::new(0, ProcessId::new(9));
        s.on_start(&mut ctx);
        let mut ctx2: Context<u32> = Context::new(100, ProcessId::new(9));
        s.on_timer(RELEASE_TICK, &mut ctx2);
        assert!(ctx2.queued_sends().is_empty(), "outer released early");
        // 3 from the inner flush + 3 from Chatter reacting to the
        // forwarded tick, all re-held by the still-closed outer wrapper
        assert_eq!(s.held(), 6, "inner flush re-held by outer");
        let mut ctx3: Context<u32> = Context::new(200, ProcessId::new(9));
        s.on_timer(RELEASE_TICK, &mut ctx3);
        assert!(ctx3.queued_sends().len() >= 3);
    }

    #[test]
    fn flip_after_arms_wake_timer_and_flips_without_traffic() {
        // Silent -> Chatter: without the wake timer the flip would never
        // happen (Mute receives no events to observe the clock through).
        let mut s = FlipAfter::new(100, Box::new(Mute), Box::new(Chatter(5)));
        let mut ctx: Context<u32> = Context::new(0, ProcessId::new(9));
        s.on_start(&mut ctx);
        assert_eq!(ctx.queued_timers(), &[(FLIP_TICK, 100)]);
        assert!(ctx.queued_sends().is_empty());
        // the wake-up itself performs the switch: after.on_start runs (3
        // sends) and the forwarded tick hits Chatter::on_timer (3 more)
        let mut ctx2: Context<u32> = Context::new(100, ProcessId::new(9));
        s.on_timer(FLIP_TICK, &mut ctx2);
        assert_eq!(ctx2.queued_sends().len(), 6);
    }

    #[test]
    fn flip_after_switches_strategy() {
        let mut s = FlipAfter::new(100, Box::new(Mute), Box::new(Chatter(5)));
        let mut ctx: Context<u32> = Context::new(0, ProcessId::new(9));
        s.on_message(ProcessId::new(1), 0, &mut ctx);
        assert!(ctx.queued_sends().is_empty());

        // at the flip, `after.on_start` runs and then handles the event
        let mut ctx2: Context<u32> = Context::new(100, ProcessId::new(9));
        s.on_message(ProcessId::new(1), 0, &mut ctx2);
        assert_eq!(ctx2.queued_sends().len(), 6);

        // the switch is latched: on_start is not repeated
        let mut ctx3: Context<u32> = Context::new(200, ProcessId::new(9));
        s.on_message(ProcessId::new(1), 0, &mut ctx3);
        assert_eq!(ctx3.queued_sends().len(), 3);
    }

    #[test]
    fn strategy_actor_delegates() {
        let mut actor = StrategyActor::new(ProcessId::new(9), Box::new(Chatter(1)));
        assert_eq!(Actor::id(&actor), ProcessId::new(9));
        let mut ctx: Context<u32> = Context::new(0, ProcessId::new(9));
        Actor::on_start(&mut actor, &mut ctx);
        assert_eq!(ctx.queued_sends().len(), 3);
        assert_eq!(actor.strategy().name(), "chatter");
    }
}
