//! [`StrategySpec`]: Byzantine strategies as *data*.
//!
//! The executable [`crate::Strategy`] objects are opaque state machines —
//! good for running, useless for storing in a [grid axis], comparing, or
//! *shrinking*. `StrategySpec` is the declarative mirror: a small
//! expression tree naming a strategy. Protocol crates compile a spec into
//! a boxed `Strategy` for their own message type (see
//! `cupft_core::byzantine::build_strategy`); the [`crate::shrink`](mod@crate::shrink) module
//! rewrites specs into strictly smaller failing variants.
//!
//! The leaf variants are the paper's adversary playbook (§II-A, §III–IV);
//! the combinator variants compose leaves into richer behaviors.
//!
//! [grid axis]: https://en.wikipedia.org/wiki/Full_factorial_experiment

use cupft_committee::Value;
use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::Time;

/// A Byzantine strategy, as a comparable, shrinkable expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategySpec {
    /// Sends nothing, ever.
    Silent,
    /// Participates in discovery but advertises a fabricated own PD (the
    /// §III worked example). Stays silent in the committee plane.
    FakePd {
        /// The claimed PD.
        claimed: ProcessSet,
    },
    /// Advertises different self-signed PDs to different requesters
    /// (split-brain attempt in the discovery plane).
    EquivocatePd {
        /// PD served to requesters with even raw ID.
        even: ProcessSet,
        /// PD served to requesters with odd raw ID.
        odd: ProcessSet,
    },
    /// Runs discovery honestly and *additionally* pushes an unsigned
    /// (forged) PD record claiming to be `victim`'s — the attack
    /// Algorithm 1's signatures exist to reject.
    ForgeUnsignedPd {
        /// The correct process whose record is forged.
        victim: ProcessId,
        /// The PD the forgery claims for the victim.
        claimed: ProcessSet,
    },
    /// Runs discovery honestly and answers every `GETDECIDEDVAL` with a
    /// fabricated value (the direct attack on Algorithm 3's learning
    /// path, defeated by the `⌈(|S|+1)/2⌉` matching-answer threshold).
    LieDecidedVal {
        /// The fabricated decision served to learners.
        value: Value,
    },
    /// Runs discovery honestly, then — as the view-0 leader of the given
    /// committee — sends conflicting proposals to the two halves of the
    /// committee and goes silent.
    EquivocateValue {
        /// The committee it expects to lead (the adversary knows the
        /// graph, per §II-A).
        committee: ProcessSet,
        /// Proposal sent to the lower-ID half.
        value_a: Value,
        /// Proposal sent to the upper-ID half.
        value_b: Value,
    },
    /// Combinator: hold every message `inner` sends and release the
    /// backlog at `until` (withheld-PD / late-burst attacks).
    DelayRelease {
        /// Release tick.
        until: Time,
        /// The wrapped strategy.
        inner: Box<StrategySpec>,
    },
    /// Combinator: only messages addressed to `targets` leave the process.
    TargetSubset {
        /// The processes the strategy may talk to.
        targets: ProcessSet,
        /// The wrapped strategy.
        inner: Box<StrategySpec>,
    },
    /// Combinator: behave as `before` until `at`, then as `after`
    /// (flip-after-round: `at` = round × tick period).
    FlipAfter {
        /// Flip time.
        at: Time,
        /// Strategy before the flip.
        before: Box<StrategySpec>,
        /// Strategy after the flip.
        after: Box<StrategySpec>,
    },
}

impl StrategySpec {
    /// The shrinker's size metric: weighted node count of the expression
    /// tree. `Silent` weighs 1, every other leaf 2, a combinator 1 plus
    /// its children — so *every* rewrite in [`Self::simplifications`]
    /// (unwrap, child rewrite, collapse-to-Silent) is strictly smaller.
    pub fn size(&self) -> usize {
        match self {
            StrategySpec::Silent => 1,
            StrategySpec::FakePd { .. }
            | StrategySpec::EquivocatePd { .. }
            | StrategySpec::ForgeUnsignedPd { .. }
            | StrategySpec::LieDecidedVal { .. }
            | StrategySpec::EquivocateValue { .. } => 2,
            StrategySpec::DelayRelease { inner, .. } | StrategySpec::TargetSubset { inner, .. } => {
                1 + inner.size()
            }
            StrategySpec::FlipAfter { before, after, .. } => 1 + before.size() + after.size(),
        }
    }

    /// Whether this is the `Silent` leaf.
    pub fn is_silent(&self) -> bool {
        matches!(self, StrategySpec::Silent)
    }

    /// Compact display label (suite labels, shrink reports). Matches the
    /// compiled strategy's `Strategy::name()` — guarded by a test in
    /// `cupft_core::byzantine`.
    pub fn label(&self) -> String {
        let set = crate::fmt_process_set;
        match self {
            StrategySpec::Silent => "silent".into(),
            StrategySpec::FakePd { claimed } => format!("fakepd{}", set(claimed)),
            StrategySpec::EquivocatePd { .. } => "equivpd".into(),
            StrategySpec::ForgeUnsignedPd { victim, .. } => format!("forge<{}>", victim.raw()),
            StrategySpec::LieDecidedVal { .. } => "lieval".into(),
            StrategySpec::EquivocateValue { .. } => "equivval".into(),
            StrategySpec::DelayRelease { until, inner } => {
                format!("delay@{until}({})", inner.label())
            }
            StrategySpec::TargetSubset { targets, inner } => {
                format!("target{}({})", set(targets), inner.label())
            }
            StrategySpec::FlipAfter { at, before, after } => {
                format!("flip@{at}[{}->{}]", before.label(), after.label())
            }
        }
    }

    /// Values this strategy may inject into the committee plane — the
    /// extra entries a validity check must allow (equivocated proposals
    /// can legitimately be decided; a lied learning answer cannot pass the
    /// majority threshold, so it is *not* allowed).
    pub fn injected_values(&self) -> Vec<Value> {
        match self {
            StrategySpec::EquivocateValue {
                value_a, value_b, ..
            } => vec![value_a.clone(), value_b.clone()],
            StrategySpec::DelayRelease { inner, .. } | StrategySpec::TargetSubset { inner, .. } => {
                inner.injected_values()
            }
            StrategySpec::FlipAfter { before, after, .. } => {
                let mut v = before.injected_values();
                v.extend(after.injected_values());
                v
            }
            _ => Vec::new(),
        }
    }

    /// The strictly smaller candidate rewrites of this spec, in the
    /// deterministic order the shrinker tries them: combinator unwraps
    /// first (largest reduction), then child rewrites, then collapse to
    /// [`StrategySpec::Silent`]. `Silent` itself has no rewrites.
    pub fn simplifications(&self) -> Vec<StrategySpec> {
        let mut out = Vec::new();
        match self {
            StrategySpec::Silent => return out,
            StrategySpec::DelayRelease { until, inner } => {
                out.push((**inner).clone());
                for s in inner.simplifications() {
                    out.push(StrategySpec::DelayRelease {
                        until: *until,
                        inner: Box::new(s),
                    });
                }
            }
            StrategySpec::TargetSubset { targets, inner } => {
                out.push((**inner).clone());
                for s in inner.simplifications() {
                    out.push(StrategySpec::TargetSubset {
                        targets: targets.clone(),
                        inner: Box::new(s),
                    });
                }
            }
            StrategySpec::FlipAfter { at, before, after } => {
                out.push((**before).clone());
                out.push((**after).clone());
                for s in before.simplifications() {
                    out.push(StrategySpec::FlipAfter {
                        at: *at,
                        before: Box::new(s),
                        after: after.clone(),
                    });
                }
                for s in after.simplifications() {
                    out.push(StrategySpec::FlipAfter {
                        at: *at,
                        before: before.clone(),
                        after: Box::new(s),
                    });
                }
            }
            _ => {}
        }
        if !self.is_silent() {
            out.push(StrategySpec::Silent);
        }
        // Deduplicate while preserving first-occurrence order (e.g.
        // unwrapping `target(silent)` and collapsing both yield `Silent`).
        let mut seen: Vec<StrategySpec> = Vec::new();
        out.retain(|s| {
            if seen.contains(s) {
                false
            } else {
                seen.push(s.clone());
                true
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn sample() -> StrategySpec {
        StrategySpec::TargetSubset {
            targets: process_set([1, 2]),
            inner: Box::new(StrategySpec::FakePd {
                claimed: process_set([1, 2, 3]),
            }),
        }
    }

    #[test]
    fn size_counts_weighted_nodes() {
        assert_eq!(StrategySpec::Silent.size(), 1);
        assert_eq!(sample().size(), 3); // combinator(1) + FakePd leaf(2)
        let flip = StrategySpec::FlipAfter {
            at: 100,
            before: Box::new(sample()),
            after: Box::new(StrategySpec::Silent),
        };
        assert_eq!(flip.size(), 5);
    }

    #[test]
    fn simplifications_are_strictly_smaller() {
        let flip = StrategySpec::FlipAfter {
            at: 100,
            before: Box::new(sample()),
            after: Box::new(StrategySpec::Silent),
        };
        let simpler = flip.simplifications();
        assert!(!simpler.is_empty());
        for s in &simpler {
            assert!(s.size() < flip.size(), "{s:?} not smaller than {flip:?}");
        }
        // unwraps come first
        assert_eq!(simpler[0], sample());
    }

    #[test]
    fn silent_is_fully_shrunk() {
        assert!(StrategySpec::Silent.simplifications().is_empty());
    }

    #[test]
    fn leaf_collapses_to_silent() {
        let leaf = StrategySpec::FakePd {
            claimed: process_set([1]),
        };
        assert_eq!(leaf.simplifications(), vec![StrategySpec::Silent]);
    }

    #[test]
    fn simplifications_deduplicate() {
        let spec = StrategySpec::TargetSubset {
            targets: process_set([1]),
            inner: Box::new(StrategySpec::Silent),
        };
        // unwrap -> Silent and collapse -> Silent must merge
        assert_eq!(spec.simplifications(), vec![StrategySpec::Silent]);
    }

    #[test]
    fn injected_values_recurse() {
        let spec = StrategySpec::DelayRelease {
            until: 50,
            inner: Box::new(StrategySpec::EquivocateValue {
                committee: process_set([1, 2]),
                value_a: Value::from_static(b"A"),
                value_b: Value::from_static(b"B"),
            }),
        };
        assert_eq!(spec.injected_values().len(), 2);
        assert!(StrategySpec::Silent.injected_values().is_empty());
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(StrategySpec::Silent.label(), "silent");
        assert_eq!(sample().label(), "target{1,2}(fakepd{1,2,3})");
    }
}
