//! Scheduling adversaries: data-described [`cupft_net::Tamper`] layers.
//!
//! A [`TamperSpec`] is the network-side sibling of
//! [`crate::StrategySpec`]: a cloneable description of an adversarial
//! delivery schedule that [`TamperSpec::build`] compiles into a boxed
//! [`Tamper`] for any message type. Because the `Tamper` hook is honored
//! by both substrates, the same spec produces the same adversary on the
//! deterministic simulator and the OS-thread runtime.
//!
//! Model discipline (§II-A): channels between correct processes are
//! reliable, so [`TamperSpec::DropFrom`] stays *within* the paper's model
//! only when the listed senders are faulty (a Byzantine process choosing
//! silence). Delay-only specs are always within the model *before* GST;
//! after GST they effectively raise `δ` by their bound.

use cupft_graph::{ProcessId, ProcessSet};
use cupft_net::{Fate, Tamper, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A declarative adversarial delivery schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperSpec {
    /// Adds an independent random delay in `[0, window]` to every message
    /// (reorders deliveries within the window). Seeded independently of
    /// the substrate, so replays are exact.
    ReorderWindow {
        /// Maximum extra delay.
        window: Time,
        /// Seed of the tamper's own RNG.
        seed: u64,
    },
    /// Adds a fixed extra delay to every message *sent by* one of
    /// `senders`.
    DelayFrom {
        /// The slowed senders.
        senders: ProcessSet,
        /// Extra delay (ticks / milliseconds).
        extra: Time,
    },
    /// Drops every message *sent by* one of `senders`. Within the model
    /// only when those senders are faulty.
    DropFrom {
        /// The silenced senders.
        senders: ProcessSet,
    },
    /// Applies every part in order: any `Drop` wins, extra delays add up.
    Chain(Vec<TamperSpec>),
}

impl TamperSpec {
    /// Compact display label (suite labels, reports).
    pub fn label(&self) -> String {
        let set = crate::fmt_process_set;
        match self {
            TamperSpec::ReorderWindow { window, .. } => format!("reorder<{window}"),
            TamperSpec::DelayFrom { senders, extra } => {
                format!("slow{}+{extra}", set(senders))
            }
            TamperSpec::DropFrom { senders } => format!("drop{}", set(senders)),
            TamperSpec::Chain(parts) => {
                let labels: Vec<String> = parts.iter().map(|p| p.label()).collect();
                labels.join("&")
            }
        }
    }

    /// Compiles the spec into an executable tamper for any message type.
    pub fn build<M: 'static>(&self) -> Box<dyn Tamper<M>> {
        match self {
            TamperSpec::ReorderWindow { window, seed } => Box::new(ReorderTamper {
                window: *window,
                rng: StdRng::seed_from_u64(*seed),
            }),
            TamperSpec::DelayFrom { senders, extra } => Box::new(DelayFromTamper {
                senders: senders.clone(),
                extra: *extra,
            }),
            TamperSpec::DropFrom { senders } => Box::new(DropFromTamper {
                senders: senders.clone(),
            }),
            TamperSpec::Chain(parts) => Box::new(ChainTamper {
                parts: parts.iter().map(|p| p.build()).collect(),
            }),
        }
    }
}

struct ReorderTamper {
    window: Time,
    rng: StdRng,
}

impl<M> Tamper<M> for ReorderTamper {
    fn disposition(&mut self, _: ProcessId, _: ProcessId, _: &'static str, _: Time) -> Fate {
        if self.window == 0 {
            Fate::Deliver
        } else {
            Fate::Delay(self.rng.random_range(0..=self.window))
        }
    }
}

struct DelayFromTamper {
    senders: ProcessSet,
    extra: Time,
}

impl<M> Tamper<M> for DelayFromTamper {
    fn disposition(&mut self, from: ProcessId, _: ProcessId, _: &'static str, _: Time) -> Fate {
        if self.senders.contains(&from) {
            Fate::Delay(self.extra)
        } else {
            Fate::Deliver
        }
    }
}

struct DropFromTamper {
    senders: ProcessSet,
}

impl<M> Tamper<M> for DropFromTamper {
    fn disposition(&mut self, from: ProcessId, _: ProcessId, _: &'static str, _: Time) -> Fate {
        if self.senders.contains(&from) {
            Fate::Drop
        } else {
            Fate::Deliver
        }
    }
}

struct ChainTamper<M> {
    parts: Vec<Box<dyn Tamper<M>>>,
}

impl<M> Tamper<M> for ChainTamper<M> {
    fn disposition(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        label: &'static str,
        now: Time,
    ) -> Fate {
        let mut total: Time = 0;
        for part in &mut self.parts {
            match part.disposition(from, to, label, now) {
                Fate::Deliver => {}
                Fate::Delay(extra) => total += extra,
                Fate::Drop => return Fate::Drop,
            }
        }
        if total == 0 {
            Fate::Deliver
        } else {
            Fate::Delay(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::process_set;

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn reorder_is_deterministic_per_seed() {
        let spec = TamperSpec::ReorderWindow {
            window: 50,
            seed: 7,
        };
        let mut a: Box<dyn Tamper<u32>> = spec.build();
        let mut b: Box<dyn Tamper<u32>> = spec.build();
        for i in 0..32 {
            let fa = a.disposition(p(1), p(2), "X", i);
            let fb = b.disposition(p(1), p(2), "X", i);
            assert_eq!(fa, fb);
            match fa {
                Fate::Deliver => {}
                Fate::Delay(d) => assert!(d <= 50),
                Fate::Drop => panic!("reorder never drops"),
            }
        }
    }

    #[test]
    fn delay_from_targets_senders_only() {
        let mut t: Box<dyn Tamper<u32>> = TamperSpec::DelayFrom {
            senders: process_set([4]),
            extra: 100,
        }
        .build();
        assert_eq!(t.disposition(p(4), p(1), "X", 0), Fate::Delay(100));
        assert_eq!(t.disposition(p(1), p(4), "X", 0), Fate::Deliver);
    }

    #[test]
    fn drop_from_silences_senders() {
        let mut t: Box<dyn Tamper<u32>> = TamperSpec::DropFrom {
            senders: process_set([4]),
        }
        .build();
        assert_eq!(t.disposition(p(4), p(1), "X", 0), Fate::Drop);
        assert_eq!(t.disposition(p(1), p(2), "X", 0), Fate::Deliver);
    }

    #[test]
    fn chain_combines_drop_wins_delays_add() {
        let mut t: Box<dyn Tamper<u32>> = TamperSpec::Chain(vec![
            TamperSpec::DelayFrom {
                senders: process_set([1]),
                extra: 10,
            },
            TamperSpec::DelayFrom {
                senders: process_set([1, 2]),
                extra: 5,
            },
            TamperSpec::DropFrom {
                senders: process_set([3]),
            },
        ])
        .build();
        assert_eq!(t.disposition(p(1), p(9), "X", 0), Fate::Delay(15));
        assert_eq!(t.disposition(p(2), p(9), "X", 0), Fate::Delay(5));
        assert_eq!(t.disposition(p(3), p(9), "X", 0), Fate::Drop);
        assert_eq!(t.disposition(p(9), p(1), "X", 0), Fate::Deliver);
    }

    #[test]
    fn labels() {
        assert_eq!(
            TamperSpec::DropFrom {
                senders: process_set([4])
            }
            .label(),
            "drop{4}"
        );
        let chain = TamperSpec::Chain(vec![
            TamperSpec::ReorderWindow { window: 9, seed: 0 },
            TamperSpec::DelayFrom {
                senders: process_set([1]),
                extra: 3,
            },
        ]);
        assert_eq!(chain.label(), "reorder<9&slow{1}+3");
    }
}
