//! Reachable reliable broadcast — the *unauthenticated* communication
//! primitive of the original BFT-CUP protocol \[10\], built as the baseline
//! for the paper's central simplification claim (Section III / Remark 1):
//! with digital signatures a process trusts a PD record directly, whereas
//! without signatures it must receive the record over **more than `f`
//! node-disjoint paths** before delivering it.
//!
//! The implementation is *disjoint-path flooding*:
//!
//! * the origin sends its message to every process it knows, tagged with
//!   the path `[origin]`;
//! * a relay forwards each distinct received copy to its own known
//!   processes, up to a relay budget of `4(f+1)` copies per message
//!   (bounding the flood while letting enough distinct routes through to
//!   complete `f + 1` disjoint ones downstream);
//! * a receiver delivers the message once the union of received paths
//!   contains more than `f` node-disjoint routes from the origin (computed
//!   exactly, by max-flow, on the union graph).
//!
//! Full fidelity to the 120-line protocol suite of \[10\] is out of scope
//! (the paper's point is precisely that signatures make it unnecessary);
//! delivery is validated empirically on the `G_di` graph families in the
//! tests, and the `auth_vs_rrb` bench compares message complexity against
//! the signed Discovery protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use cupft_graph::{DiGraph, ProcessId, ProcessSet};
use cupft_net::{Actor, Context, Labeled};

/// A broadcast payload: opaque bytes identified by `(origin, tag)`.
///
/// For the discovery baseline the payload is an encoded PD; the primitive
/// itself does not interpret it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RrbPayload {
    /// Originating process.
    pub origin: ProcessId,
    /// Per-origin message tag (e.g. 0 = "my PD").
    pub tag: u64,
    /// Opaque content.
    pub content: Vec<u64>,
}

/// The single message kind: a flooded copy carrying its route so far
/// (origin first, most recent relay last; the receiver is *not* included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrbMsg {
    /// The flooded payload.
    pub payload: RrbPayload,
    /// Route the copy travelled, starting at the origin.
    pub path: Vec<ProcessId>,
}

impl Labeled for RrbMsg {
    fn label(&self) -> &'static str {
        "RRB-FLOOD"
    }
}

/// Per-process state of the reachable-reliable-broadcast primitive.
#[derive(Debug, Clone)]
pub struct RrbState {
    id: ProcessId,
    fault_threshold: usize,
    /// Processes this node may send to (its knowledge).
    neighbors: ProcessSet,
    /// Paths received per payload (full routes ending at this process).
    received_paths: BTreeMap<RrbPayload, Vec<Vec<ProcessId>>>,
    /// Paths already forwarded per payload (relay budget bookkeeping).
    forwarded: BTreeMap<RrbPayload, Vec<Vec<ProcessId>>>,
    delivered: BTreeMap<RrbPayload, ()>,
}

impl RrbState {
    /// Creates the state for process `id` with fault threshold `f` and the
    /// set of processes it knows (its PD).
    pub fn new(id: ProcessId, fault_threshold: usize, neighbors: ProcessSet) -> Self {
        RrbState {
            id,
            fault_threshold,
            neighbors,
            received_paths: BTreeMap::new(),
            forwarded: BTreeMap::new(),
            delivered: BTreeMap::new(),
        }
    }

    /// This process's ID.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Expands the neighbor set (knowledge grows as PDs are delivered).
    pub fn add_neighbors(&mut self, new: &ProcessSet) {
        self.neighbors.extend(new.iter().copied());
        self.neighbors.remove(&self.id);
    }

    /// Originates a broadcast of `payload` (must have `origin == id`).
    pub fn broadcast(&mut self, payload: RrbPayload) -> Vec<(ProcessId, RrbMsg)> {
        debug_assert_eq!(payload.origin, self.id);
        // own message: trivially delivered
        self.delivered.entry(payload.clone()).or_default();
        let msg = RrbMsg {
            payload,
            path: vec![self.id],
        };
        self.neighbors.iter().map(|&n| (n, msg.clone())).collect()
    }

    /// Payloads delivered so far.
    pub fn delivered(&self) -> impl Iterator<Item = &RrbPayload> + '_ {
        self.delivered.keys()
    }

    /// Whether `payload` has been delivered.
    pub fn is_delivered(&self, payload: &RrbPayload) -> bool {
        self.delivered.contains_key(payload)
    }

    /// Handles a flooded copy; returns forwards to send plus the payloads
    /// newly delivered by this copy.
    pub fn handle(&mut self, msg: RrbMsg) -> (Vec<(ProcessId, RrbMsg)>, Vec<RrbPayload>) {
        let mut forwards = Vec::new();
        let mut newly_delivered = Vec::new();
        let RrbMsg { payload, path } = msg;
        // sanity: route must start at the origin and not contain us
        if path.first() != Some(&payload.origin) || path.contains(&self.id) {
            return (forwards, newly_delivered);
        }
        // record the full route (ending here)
        let mut full = path.clone();
        full.push(self.id);
        let paths = self.received_paths.entry(payload.clone()).or_default();
        if !paths.contains(&full) {
            paths.push(full);
        }

        // delivery check: > f node-disjoint routes in the union graph
        if !self.delivered.contains_key(&payload) {
            let disjoint = self.disjoint_route_count(&payload);
            if disjoint > self.fault_threshold {
                self.delivered.insert(payload.clone(), ());
                newly_delivered.push(payload.clone());
            }
        }

        // Relay rule: forward each *distinct* incoming route while the
        // per-payload budget lasts. Requiring forwarded routes to be
        // pairwise disjoint looks like an optimization but is wrong: a
        // short route arriving after a longer overlapping one would be
        // suppressed even though only the short one completes a disjoint
        // pair at some downstream receiver. Redundant routes merely add to
        // the receiver's union graph; the budget bounds the flood at
        // `4(f+1) · deg` messages per relay per payload.
        let budget = 4 * (self.fault_threshold + 1);
        let forwarded = self.forwarded.entry(payload.clone()).or_default();
        if forwarded.len() < budget && !forwarded.contains(&path) {
            forwarded.push(path.clone());
            let mut new_path = path;
            new_path.push(self.id);
            let out = RrbMsg {
                payload,
                path: new_path,
            };
            for &n in &self.neighbors {
                if !out.path.contains(&n) {
                    forwards.push((n, out.clone()));
                }
            }
        }
        (forwards, newly_delivered)
    }

    /// Exact count of node-disjoint origin→self routes in the union of
    /// received routes (Menger on the union graph).
    pub fn disjoint_route_count(&self, payload: &RrbPayload) -> usize {
        let Some(paths) = self.received_paths.get(payload) else {
            return 0;
        };
        let mut union = DiGraph::new();
        for path in paths {
            for w in path.windows(2) {
                union.add_edge(w[0], w[1]);
            }
        }
        if !union.contains_vertex(payload.origin) || !union.contains_vertex(self.id) {
            return 0;
        }
        union.disjoint_path_count(payload.origin, self.id)
    }
}

/// A standalone actor flooding one payload (its own PD) and collecting
/// deliveries — the unauthenticated counterpart of
/// `cupft_discovery::DiscoveryActor` used in the ablation bench.
#[derive(Debug)]
pub struct RrbActor {
    state: RrbState,
    own_payload: RrbPayload,
}

impl RrbActor {
    /// Creates an actor that will broadcast `content` under tag 0.
    pub fn new(
        id: ProcessId,
        fault_threshold: usize,
        neighbors: ProcessSet,
        content: Vec<u64>,
    ) -> Self {
        RrbActor {
            state: RrbState::new(id, fault_threshold, neighbors),
            own_payload: RrbPayload {
                origin: id,
                tag: 0,
                content,
            },
        }
    }

    /// The protocol state (deliveries, routes).
    pub fn state(&self) -> &RrbState {
        &self.state
    }
}

impl Actor<RrbMsg> for RrbActor {
    fn id(&self) -> ProcessId {
        self.state.id()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<RrbMsg>) {
        for (to, msg) in self.state.broadcast(self.own_payload.clone()) {
            ctx.send(to, msg);
        }
    }

    fn on_message(&mut self, _from: ProcessId, msg: RrbMsg, ctx: &mut Context<RrbMsg>) {
        let (forwards, delivered) = self.state.handle(msg);
        // Growing knowledge: a delivered PD teaches us its contents.
        for payload in &delivered {
            let new: ProcessSet = payload.content.iter().map(|&r| ProcessId::new(r)).collect();
            self.state.add_neighbors(&new);
        }
        for (to, out) in forwards {
            ctx.send(to, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupft_graph::{fig1b, process_set, GdiParams, Generator};
    use cupft_net::sim::Simulation;
    use cupft_net::{DelayPolicy, SimConfig};

    fn p(n: u64) -> ProcessId {
        ProcessId::new(n)
    }

    fn payload(origin: u64) -> RrbPayload {
        RrbPayload {
            origin: p(origin),
            tag: 0,
            content: vec![],
        }
    }

    #[test]
    fn direct_neighbor_needs_more_paths_with_f1() {
        // With f = 1, one direct copy is not enough (1 path, need > 1).
        let mut s = RrbState::new(p(2), 1, process_set([1, 3]));
        let (_, delivered) = s.handle(RrbMsg {
            payload: payload(1),
            path: vec![p(1)],
        });
        assert!(delivered.is_empty());
        assert_eq!(s.disjoint_route_count(&payload(1)), 1);
        // A second, disjoint route through 3 completes delivery.
        let (_, delivered) = s.handle(RrbMsg {
            payload: payload(1),
            path: vec![p(1), p(3)],
        });
        assert_eq!(delivered, vec![payload(1)]);
    }

    #[test]
    fn f0_delivers_on_first_copy() {
        let mut s = RrbState::new(p(2), 0, process_set([1]));
        let (_, delivered) = s.handle(RrbMsg {
            payload: payload(1),
            path: vec![p(1)],
        });
        assert_eq!(delivered.len(), 1);
    }

    #[test]
    fn shared_relay_does_not_count_twice() {
        // Two routes through the same relay 9: still only 1 disjoint path.
        let mut s = RrbState::new(p(2), 1, process_set([]));
        s.handle(RrbMsg {
            payload: payload(1),
            path: vec![p(1), p(9), p(5)],
        });
        let (_, delivered) = s.handle(RrbMsg {
            payload: payload(1),
            path: vec![p(1), p(9), p(6)],
        });
        assert!(delivered.is_empty());
        assert_eq!(s.disjoint_route_count(&payload(1)), 1);
    }

    #[test]
    fn cycle_and_spoofed_paths_rejected() {
        let mut s = RrbState::new(p(2), 0, process_set([]));
        // path containing the receiver
        let (fwd, del) = s.handle(RrbMsg {
            payload: payload(1),
            path: vec![p(1), p(2), p(3)],
        });
        assert!(fwd.is_empty() && del.is_empty());
        // path not starting at the origin
        let (fwd, del) = s.handle(RrbMsg {
            payload: payload(1),
            path: vec![p(7)],
        });
        assert!(fwd.is_empty() && del.is_empty());
    }

    #[test]
    fn relay_budget_bounds_forwards() {
        let mut s = RrbState::new(p(2), 0, process_set([5]));
        // budget = 4(0+1) = 4: first four distinct copies forwarded, the
        // fifth is dropped; duplicates never forwarded.
        let routes = [
            vec![p(1)],
            vec![p(1), p(3)],
            vec![p(1), p(4)],
            vec![p(1)], // duplicate
            vec![p(1), p(6)],
            vec![p(1), p(7)],
        ];
        let mut total_forwards = 0;
        for r in routes {
            let (fwd, _) = s.handle(RrbMsg {
                payload: payload(1),
                path: r,
            });
            total_forwards += fwd.len();
        }
        // each forwarded copy goes to 1 neighbor; budget 4
        assert_eq!(total_forwards, 4);
    }

    /// End-to-end on Fig. 1b (f = 1): every correct process delivers every
    /// correct process's PD broadcast, despite the Byzantine process 4
    /// staying silent.
    #[test]
    fn rrb_delivers_on_fig1b_with_silent_byzantine() {
        let fig = fig1b();
        let mut sim: Simulation<RrbMsg> = Simulation::new(SimConfig {
            seed: 5,
            max_time: 100_000,
            policy: DelayPolicy::PartialSynchrony {
                gst: 100,
                delta: 10,
                pre_gst_max: 60,
            },
        });
        for v in fig.graph().vertices() {
            if fig.byzantine().contains(&v) {
                continue;
            }
            let pd = fig.graph().out_neighbors(v);
            let content: Vec<u64> = pd.iter().map(|q| q.raw()).collect();
            sim.add_actor(Box::new(RrbActor::new(v, 1, pd, content)));
        }
        sim.run_until(|s| s.now() > 20_000);
        // Correct *sink* members must deliver each other's PDs: they are
        // the processes with > f disjoint incoming routes in G_safe.
        let sink = process_set([1, 2, 3]);
        for &receiver in &sink {
            let actor: &RrbActor = sim.actor_as(receiver).unwrap();
            for &origin in &sink {
                if origin == receiver {
                    continue;
                }
                let got = actor
                    .state()
                    .delivered()
                    .any(|pl| pl.origin == origin && pl.tag == 0);
                assert!(got, "{receiver} must deliver {origin}'s PD");
            }
        }
    }

    /// On generated G_di systems the sink members deliver each other's
    /// broadcasts (empirical validation of the baseline).
    #[test]
    fn rrb_delivers_on_generated_gdi() {
        for seed in 0..3 {
            let sys = Generator::from_seed(seed)
                .generate(&GdiParams::new(1))
                .unwrap();
            let mut sim: Simulation<RrbMsg> = Simulation::new(SimConfig {
                seed,
                max_time: 200_000,
                policy: DelayPolicy::PartialSynchrony {
                    gst: 100,
                    delta: 10,
                    pre_gst_max: 60,
                },
            });
            for v in sys.correct() {
                let pd = sys.graph.out_neighbors(v);
                let content: Vec<u64> = pd.iter().map(|q| q.raw()).collect();
                sim.add_actor(Box::new(RrbActor::new(v, 1, pd, content)));
            }
            sim.run_until(|s| s.now() > 50_000);
            for &receiver in &sys.sink {
                let actor: &RrbActor = sim.actor_as(receiver).unwrap();
                for &origin in &sys.sink {
                    if origin == receiver {
                        continue;
                    }
                    assert!(
                        actor.state().delivered().any(|pl| pl.origin == origin),
                        "seed {seed}: {receiver} missing {origin}'s broadcast"
                    );
                }
            }
        }
    }
}

impl RrbState {
    /// The full routes recorded for `payload` (diagnostics).
    pub fn routes_of(&self, payload: &RrbPayload) -> &[Vec<ProcessId>] {
        self.received_paths
            .get(payload)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// The *unauthenticated* discovery pipeline of the original BFT-CUP \[10\]:
/// every process floods its PD via reachable reliable broadcast, and a PD
/// enters the local [`KnowledgeView`] only once delivered over more than
/// `f` node-disjoint routes — the multi-path delivery standing in for the
/// signature check of the authenticated protocol.
///
/// Sink identification on the resulting views uses the same predicates as
/// the authenticated stack, reproducing Alchieri et al.'s result (cited as
/// \[9\] in the paper) that the knowledge connectivity *requirements* are
/// unchanged by removing signatures — only the protocol complexity grows.
#[derive(Debug)]
pub struct UnauthDiscoveryActor {
    rrb: RrbState,
    view: KnowledgeView,
    own_payload: RrbPayload,
    period: u64,
}

use cupft_graph::KnowledgeView;
use cupft_net::TimerKind;

/// Timer kind for the unauthenticated re-flood round.
pub const REFLOOD_TICK: TimerKind = 0xF100D;

impl UnauthDiscoveryActor {
    /// Creates the actor for process `id` with fault threshold `f` and its
    /// participant detector output `pd`.
    pub fn new(id: ProcessId, fault_threshold: usize, pd: ProcessSet, period: u64) -> Self {
        let content: Vec<u64> = pd.iter().map(|q| q.raw()).collect();
        UnauthDiscoveryActor {
            rrb: RrbState::new(id, fault_threshold, pd.clone()),
            view: KnowledgeView::new(id, pd),
            own_payload: RrbPayload {
                origin: id,
                tag: 0,
                content,
            },
            period,
        }
    }

    /// The knowledge view assembled from delivered PDs.
    pub fn view(&self) -> &KnowledgeView {
        &self.view
    }

    /// The underlying broadcast state.
    pub fn rrb(&self) -> &RrbState {
        &self.rrb
    }
}

impl Actor<RrbMsg> for UnauthDiscoveryActor {
    fn id(&self) -> ProcessId {
        self.rrb.id()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<RrbMsg>) {
        for (to, msg) in self.rrb.broadcast(self.own_payload.clone()) {
            ctx.send(to, msg);
        }
        ctx.set_timer(REFLOOD_TICK, self.period);
    }

    fn on_message(&mut self, _from: ProcessId, msg: RrbMsg, ctx: &mut Context<RrbMsg>) {
        let (forwards, delivered) = self.rrb.handle(msg);
        for payload in &delivered {
            // A delivered PD is trusted exactly like a verified signature.
            let pd: ProcessSet = payload.content.iter().map(|&r| ProcessId::new(r)).collect();
            self.view.record_pd(payload.origin, pd.clone());
            self.rrb.add_neighbors(&pd);
            self.rrb
                .add_neighbors(&[payload.origin].into_iter().collect());
        }
        for (to, out) in forwards {
            ctx.send(to, out);
        }
    }

    fn on_timer(&mut self, timer: TimerKind, ctx: &mut Context<RrbMsg>) {
        if timer != REFLOOD_TICK {
            return;
        }
        // Knowledge may have grown: (re-)offer our own PD to everyone we
        // now know. RrbState dedups routes, so this is idempotent per
        // receiver; the flood re-arms only while knowledge can still grow.
        let msg = RrbMsg {
            payload: self.own_payload.clone(),
            path: vec![self.rrb.id()],
        };
        for n in self.view.known().clone() {
            if n != self.rrb.id() {
                ctx.send(n, msg.clone());
            }
        }
        ctx.set_timer(REFLOOD_TICK, self.period);
    }
}

#[cfg(test)]
mod unauth_tests {
    use super::*;
    use cupft_graph::{fig1b, process_set, CandidateSearch};
    use cupft_net::sim::Simulation;
    use cupft_net::{DelayPolicy, SimConfig};

    fn run_unauth(fig: &cupft_graph::FigureGraph, f: usize, seed: u64) -> Simulation<RrbMsg> {
        let mut sim: Simulation<RrbMsg> = Simulation::new(SimConfig {
            seed,
            max_time: 100_000,
            policy: DelayPolicy::PartialSynchrony {
                gst: 100,
                delta: 10,
                pre_gst_max: 60,
            },
        });
        for v in fig.graph().vertices() {
            if fig.byzantine().contains(&v) {
                continue;
            }
            let pd = fig.graph().out_neighbors(v);
            sim.add_actor(Box::new(UnauthDiscoveryActor::new(v, f, pd, 40)));
        }
        sim.run_until(|s| s.now() > 30_000);
        sim
    }

    /// The original-BFT-CUP pipeline: unauthenticated discovery feeds the
    /// same sink predicate and identifies the same sink as the signed
    /// stack (Alchieri et al.'s requirement-equivalence, here with the
    /// Byzantine member silent so the views contain correct PDs only).
    #[test]
    fn unauthenticated_sink_identification_on_fig1b() {
        let fig = fig1b();
        let sim = run_unauth(&fig, 1, 11);
        let search = CandidateSearch::default();
        for &member in &process_set([1, 2, 3]) {
            let actor: &UnauthDiscoveryActor = sim.actor_as(member).unwrap();
            let detection = search
                .sink_with_threshold(actor.view(), 1)
                .unwrap_or_else(|| panic!("{member} must identify the sink"));
            // Without 4's (unsignable) PD the sink resolves to the correct
            // members plus 4 absorbed via S2, exactly like the signed run.
            assert_eq!(detection.members(), process_set([1, 2, 3, 4]));
        }
    }

    /// Views assembled over RRB match the authenticated ground truth for
    /// every correct sink member's PD.
    #[test]
    fn unauth_views_match_real_pds() {
        let fig = fig1b();
        let sim = run_unauth(&fig, 1, 12);
        for &member in &process_set([1, 2, 3]) {
            let actor: &UnauthDiscoveryActor = sim.actor_as(member).unwrap();
            for &other in &process_set([1, 2, 3]) {
                if other == member {
                    continue;
                }
                assert_eq!(
                    actor.view().pd_of(other),
                    Some(&fig.graph().out_neighbors(other)),
                    "{member}'s delivered PD of {other} must be authentic"
                );
            }
        }
    }
}
