//! The one wire codec for every BFT-CUPFT protocol message.
//!
//! Hand-rolled and dependency-free by design — the workspace carries no
//! serde, and the two codecs that predate this crate
//! (`DiscoveryState::to_bytes` and `cupft_bench`'s JSON writer) set the
//! precedent: explicit byte layouts, big-endian integers, bounds-checked
//! reads, and no reflection. This crate lifts that discipline into a pair
//! of traits every message-owning crate implements for its own types:
//!
//! * [`Encode`] — append the canonical byte form to a buffer. Encoding is
//!   **deterministic**: the same value always produces the same bytes, so
//!   `encode ∘ decode ∘ encode` is byte-identical (tested per message
//!   under proptest).
//! * [`Decode`] — parse from a bounds-checked [`Reader`]. Decoding is
//!   **total**: every byte string either yields a value or a structured
//!   [`WireError`]; no panic, no over-read, no unchecked allocation.
//!
//! On top of the traits sits the [`frame`] module: the
//! `magic ‖ version ‖ length ‖ payload` envelope the socket runtime
//! writes on TCP streams, with oversize and corruption rejection at the
//! boundary (see `docs/WIRE.md` for the layout and evolution rules).
//!
//! # Conventions
//!
//! All integers are big-endian. Collections carry a `u64` count prefix,
//! byte strings a `u64` length prefix, enums a `u8` tag, `Option` a
//! `u8` presence byte — exactly the layout the discovery snapshot codec
//! has used since it was introduced, so migrating it onto these traits
//! changed no bytes.
//!
//! # Example
//!
//! ```
//! use cupft_wire::{decode_from_slice, encode_to_vec};
//!
//! let bytes = encode_to_vec(&(7u64, String::from("pd")));
//! let back: (u64, String) = decode_from_slice(&bytes).unwrap();
//! assert_eq!(back, (7, String::from("pd")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod impls;

use std::fmt;

/// Everything that can go wrong while decoding wire bytes.
///
/// Decoders never panic on malformed input — corruption, truncation, and
/// hostile length prefixes all surface as one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A frame or snapshot did not start with the expected magic bytes.
    BadMagic,
    /// A frame or snapshot carried a version this build does not speak.
    BadVersion(u8),
    /// An enum tag byte was outside the known range for `ty`.
    BadTag {
        /// The type whose tag space was violated.
        ty: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A declared length exceeded the codec's hard ceiling.
    Oversized {
        /// The declared length.
        len: u64,
        /// The ceiling it violated.
        max: u64,
    },
    /// Bytes remained after the value was fully decoded.
    Trailing(usize),
    /// A structural invariant failed (bad UTF-8, unknown domain, …).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated: needed {needed} bytes, {remaining} remain")
            }
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag { ty, tag } => write!(f, "unknown tag {tag} for {ty}"),
            WireError::Oversized { len, max } => {
                write!(f, "declared length {len} exceeds maximum {max}")
            }
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
            WireError::Malformed(what) => write!(f, "malformed value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Hard ceiling on any single declared length (collection counts, byte
/// strings). Far above anything the protocol produces, low enough that a
/// hostile length prefix cannot drive a giant allocation.
pub const MAX_LEN: u64 = 1 << 24;

/// A bounds-checked cursor over wire bytes.
///
/// Every read either succeeds within the buffer or returns
/// [`WireError::Truncated`]; nothing ever reads past the end. The reader
/// is the only way [`Decode`] implementations see input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Consumes a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Consumes a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Consumes a big-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_be_bytes(
            self.take(16)?.try_into().expect("len 16"),
        ))
    }

    /// Consumes a `u64` length prefix, validated against [`MAX_LEN`] and
    /// the bytes actually remaining (each encoded element occupies at
    /// least one byte, so a count beyond `remaining` is always bogus —
    /// this rejects hostile prefixes before any allocation happens).
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(WireError::Oversized { len, max: MAX_LEN });
        }
        let len = len as usize;
        if len > self.remaining() {
            return Err(WireError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Consumes a `u64`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.len_prefix()?;
        self.take(len)
    }

    /// Fails with [`WireError::Trailing`] unless the buffer is fully
    /// consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Trailing(self.buf.len()))
        }
    }
}

/// Serialize a value into its canonical wire bytes.
pub trait Encode {
    /// Appends the value's wire form to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Parse a value from wire bytes.
pub trait Decode: Sized {
    /// Reads one value from the cursor, leaving it positioned after the
    /// value's last byte.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes exactly one value from `bytes`, rejecting trailing garbage.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Appends a `u64` count/length prefix (the codec-wide convention).
pub fn put_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(&(len as u64).to_be_bytes());
}

/// Appends a `u64`-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_len(out, bytes.len());
    out.extend_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.remaining(), 2);
        assert!(matches!(
            r.u64(),
            Err(WireError::Truncated {
                needed: 8,
                remaining: 2
            })
        ));
        // A failed read consumes nothing.
        assert_eq!(r.u16().unwrap(), 0x0203);
        r.finish().unwrap();
    }

    #[test]
    fn len_prefix_rejects_hostile_lengths() {
        // Claims u64::MAX elements with an empty tail: must fail before
        // any allocation.
        let mut bytes = u64::MAX.to_be_bytes().to_vec();
        bytes.push(0);
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.len_prefix(), Err(WireError::Oversized { .. })));

        // Claims more bytes than remain.
        let mut bytes = 100u64.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0; 4]);
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.len_prefix(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn decode_from_slice_rejects_trailing() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0xFF);
        assert_eq!(
            decode_from_slice::<u32>(&bytes),
            Err(WireError::Trailing(1))
        );
    }

    #[test]
    fn wire_error_displays() {
        let errs: Vec<WireError> = vec![
            WireError::Truncated {
                needed: 8,
                remaining: 2,
            },
            WireError::BadMagic,
            WireError::BadVersion(9),
            WireError::BadTag { ty: "X", tag: 3 },
            WireError::Oversized { len: 10, max: 1 },
            WireError::Trailing(4),
            WireError::Malformed("why"),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
