//! `Encode`/`Decode` implementations for primitives, std containers, and
//! the graph-layer vocabulary types every message builds on.

use std::sync::Arc;

use bytes::Bytes;
use cupft_graph::{ProcessId, ProcessSet};

use crate::{put_bytes, put_len, Decode, Encode, Reader, WireError};

macro_rules! int_impl {
    ($ty:ty, $read:ident) => {
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                r.$read()
            }
        }
    };
}

int_impl!(u8, u8);
int_impl!(u16, u16);
int_impl!(u32, u32);
int_impl!(u64, u64);
int_impl!(u128, u128);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { ty: "bool", tag }),
        }
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        put_bytes(out, self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.bytes()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // `len_prefix` already guarantees the count cannot exceed the
        // bytes remaining (every element occupies ≥ 1 byte), so the
        // allocation below is bounded by the input size.
        let len = r.len_prefix()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag { ty: "Option", tag }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Encode + ?Sized> Encode for Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
}

impl<T: Decode> Decode for Arc<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        T::decode(r).map(Arc::new)
    }
}

impl Encode for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        put_bytes(out, self.as_slice());
    }
}

impl Decode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Bytes::copy_from_slice(r.bytes()?))
    }
}

impl Encode for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }
}

impl Decode for ProcessId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ProcessId::new(r.u64()?))
    }
}

impl Encode for ProcessSet {
    fn encode(&self, out: &mut Vec<u8>) {
        // Matches the discovery snapshot's historical layout: u64 count,
        // then raw member IDs. The set iterates sorted, so the encoding
        // is canonical.
        put_len(out, self.len());
        for p in self.iter() {
            p.encode(out);
        }
    }
}

impl Decode for ProcessSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.len_prefix()?;
        let mut out = ProcessSet::with_capacity(len);
        for _ in 0..len {
            out.insert(ProcessId::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_from_slice, encode_to_vec};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_from_slice(&bytes).expect("decodes");
        assert_eq!(back, v);
        assert_eq!(encode_to_vec(&back), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("κ-OSR"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(9u64));
        roundtrip(Option::<u64>::None);
        roundtrip((7u32, String::from("x")));
        roundtrip(Arc::new(11u64));
        roundtrip(Bytes::copy_from_slice(b"payload"));
    }

    #[test]
    fn graph_types_roundtrip() {
        roundtrip(ProcessId::new(42));
        roundtrip(cupft_graph::process_set([3, 1, 2]));
        roundtrip(ProcessSet::new());
    }

    #[test]
    fn process_set_decode_is_canonical() {
        // An adversarial unsorted encoding still decodes to the sorted
        // canonical set (and therefore re-encodes differently — decode
        // never trusts sender ordering).
        let mut bytes = Vec::new();
        put_len(&mut bytes, 2);
        5u64.encode(&mut bytes);
        2u64.encode(&mut bytes);
        let set: ProcessSet = decode_from_slice(&bytes).unwrap();
        assert_eq!(set, cupft_graph::process_set([2, 5]));
    }

    #[test]
    fn bad_tags_reject() {
        assert!(matches!(
            decode_from_slice::<bool>(&[7]),
            Err(WireError::BadTag { ty: "bool", .. })
        ));
        assert!(matches!(
            decode_from_slice::<Option<u8>>(&[9, 0]),
            Err(WireError::BadTag { ty: "Option", .. })
        ));
    }

    #[test]
    fn bad_utf8_rejects() {
        let mut bytes = Vec::new();
        put_bytes(&mut bytes, &[0xFF, 0xFE]);
        assert_eq!(
            decode_from_slice::<String>(&bytes),
            Err(WireError::Malformed("non-UTF-8 string"))
        );
    }
}
