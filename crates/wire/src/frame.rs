//! The stream envelope: `magic ‖ version ‖ length ‖ payload`.
//!
//! Byte-for-byte layout (9-byte header, big-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic   b"CUWF"
//! 4       1     version WIRE_VERSION (currently 1)
//! 5       4     length  payload byte count, u32 BE, ≤ MAX_FRAME_PAYLOAD
//! 9       len   payload (an Encode-produced value, usually an Envelope)
//! ```
//!
//! The header exists so a TCP reader can (a) resynchronize detection —
//! a stream that does not start `CUWF` is garbage, fail fast; (b) refuse
//! cross-version traffic explicitly ([`WireError::BadVersion`]) instead
//! of misparsing it; (c) bound memory before allocating
//! ([`WireError::Oversized`]). Version negotiation is deliberately
//! minimal: peers speak exactly one version, and a mismatch closes the
//! connection — see `docs/WIRE.md` for the evolution rules.

use std::fmt;
use std::io::{self, Read, Write};

use crate::WireError;

/// First four bytes of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"CUWF";

/// The wire version this build speaks (header byte 4).
pub const WIRE_VERSION: u8 = 1;

/// Fixed header size: magic + version + length.
pub const HEADER_LEN: usize = 9;

/// Hard ceiling on a frame payload (16 MiB) — a hostile or corrupt
/// length prefix is rejected before any allocation.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 24;

/// Wraps `payload` in a frame.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`]; protocol messages
/// are orders of magnitude smaller, so an oversized outbound payload is
/// a programming error, not a runtime condition.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "outbound frame payload of {} bytes exceeds MAX_FRAME_PAYLOAD",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses exactly one frame from `bytes`, returning its payload.
/// Rejects bad magic, unknown versions, oversized or truncated lengths,
/// and trailing garbage.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], WireError> {
    let mut r = crate::Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let len = r.u32()? as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized {
            len: len as u64,
            max: MAX_FRAME_PAYLOAD as u64,
        });
    }
    let payload = r.take(len)?;
    r.finish()?;
    Ok(payload)
}

/// An error while moving frames over a byte stream: either the transport
/// failed ([`io::Error`]) or the peer sent bytes that are not a valid
/// frame ([`WireError`]).
#[derive(Debug)]
pub enum FrameIoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream carried malformed frame bytes.
    Wire(WireError),
}

impl fmt::Display for FrameIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameIoError::Io(e) => write!(f, "frame transport error: {e}"),
            FrameIoError::Wire(e) => write!(f, "frame codec error: {e}"),
        }
    }
}

impl std::error::Error for FrameIoError {}

impl From<io::Error> for FrameIoError {
    fn from(e: io::Error) -> Self {
        FrameIoError::Io(e)
    }
}

impl From<WireError> for FrameIoError {
    fn from(e: WireError) -> Self {
        FrameIoError::Wire(e)
    }
}

/// Writes one frame to a stream (single `write_all`, so concurrent
/// writers on distinct streams never interleave within a frame).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame(payload))
}

/// Reads one frame from a stream.
///
/// Returns `Ok(None)` on a clean end-of-stream *at a frame boundary*
/// (zero bytes before the next header) — how an orderly peer shutdown
/// looks. EOF mid-header or mid-payload is a truncation error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameIoError> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        n if n < HEADER_LEN => {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                remaining: n,
            }
            .into())
        }
        _ => {}
    }
    if header[..4] != FRAME_MAGIC {
        return Err(WireError::BadMagic.into());
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[4]).into());
    }
    let len = u32::from_be_bytes(header[5..9].try_into().expect("len 4")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized {
            len: len as u64,
            max: MAX_FRAME_PAYLOAD as u64,
        }
        .into());
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(WireError::Truncated {
            needed: len,
            remaining: got,
        }
        .into());
    }
    Ok(Some(payload))
}

/// Fills `buf` from `r`, returning how many bytes were read before EOF
/// (retrying on `Interrupted`, unlike `read_exact`, and distinguishing
/// "EOF immediately" from "EOF mid-value").
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrips() {
        let framed = frame(b"hello");
        assert_eq!(unframe(&framed).unwrap(), b"hello");
        assert_eq!(framed.len(), HEADER_LEN + 5);
    }

    #[test]
    fn unframe_rejects_corruption() {
        let good = frame(b"payload");

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(unframe(&bad_magic), Err(WireError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert_eq!(unframe(&bad_version), Err(WireError::BadVersion(99)));

        let mut oversized = good.clone();
        oversized[5..9].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            unframe(&oversized),
            Err(WireError::Oversized { .. })
        ));

        for cut in 0..good.len() {
            assert!(
                unframe(&good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(unframe(&trailing), Err(WireError::Trailing(1)));
    }

    #[test]
    fn stream_reads_frames_then_clean_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"one").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"three").unwrap();
        let mut cursor = Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"three");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn stream_eof_mid_frame_is_truncation() {
        let framed = frame(b"payload");
        // Mid-header.
        let mut cursor = Cursor::new(framed[..4].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameIoError::Wire(WireError::Truncated { .. }))
        ));
        // Mid-payload.
        let mut cursor = Cursor::new(framed[..HEADER_LEN + 2].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameIoError::Wire(WireError::Truncated { .. }))
        ));
    }
}
