//! The same BFT-CUPFT nodes, on real OS threads with real (randomized)
//! delivery delays — demonstrating that the protocol stack is not a
//! simulator artifact.
//!
//! ```sh
//! cargo run --example threaded_cluster
//! ```

use std::collections::BTreeSet;
use std::time::Duration;

use bft_cupft::committee::Value;
use bft_cupft::core::{Node, NodeConfig, NodeMsg, ProtocolMode};
use bft_cupft::detector::SystemSetup;
use bft_cupft::graph::fig4b;
use bft_cupft::net::threaded::{run_threaded, Board, ThreadedConfig};
use bft_cupft::net::Actor;

fn main() {
    let fig = fig4b();
    let setup = SystemSetup::new(fig.graph());
    let board: Board<Vec<u8>> = Board::new();

    let mut actors: Vec<Box<dyn Actor<NodeMsg>>> = Vec::new();
    for v in fig.graph().vertices() {
        let config = NodeConfig {
            mode: ProtocolMode::UnknownThreshold,
            discovery_period: 15, // milliseconds on the threaded runtime
            replica: bft_cupft::committee::ReplicaConfig { timeout_base: 500 },
            crash_at: None,
            ..NodeConfig::default()
        };
        let value = Value::from(format!("proposal-from-{}", v.raw()).into_bytes());
        let node = Node::from_setup(&setup, v, value, config)
            .expect("vertex registered")
            .with_board(board.clone());
        actors.push(Box::new(node));
    }

    println!(
        "launching {} nodes on OS threads (Fig. 4b graph, unknown f)...",
        actors.len()
    );
    let expected = actors.len();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let board = board.clone();
        let stop = stop.clone();
        std::thread::spawn(move || loop {
            if board.len() >= expected {
                stop.store(true, std::sync::atomic::Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        });
    }
    let report = run_threaded(
        actors,
        ThreadedConfig {
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(8),
            wall_timeout: Duration::from_secs(30),
            seed: 99,
            stop: Some(stop.clone()),
            ..ThreadedConfig::default()
        },
    );

    let decisions = board.snapshot();
    println!(
        "{} of {} nodes decided within {:?}; {} messages routed",
        decisions.len(),
        report.actors.len(),
        report.elapsed,
        report.stats.messages_sent
    );
    let distinct: BTreeSet<&Vec<u8>> = decisions.values().collect();
    for (id, v) in &decisions {
        println!("  {id} decided {:?}", String::from_utf8_lossy(v));
    }
    assert_eq!(distinct.len(), 1, "agreement must hold on real threads");
    assert_eq!(
        decisions.len(),
        report.actors.len(),
        "every node must decide"
    );
    println!("agreement on real threads: ✓");
}
