//! The paper's motivating workload (Section I): bootstrapping a
//! high-performance blockchain committee in the *hybrid* setting — many
//! participants, each knowing only a subset of the others, no agreed
//! fault threshold.
//!
//! ```sh
//! cargo run --example blockchain_committee
//! ```
//!
//! A validator core (generated extended-OSR graph) plus light nodes agree
//! on a genesis block. One would-be validator is Byzantine and advertises
//! a fabricated PD; consensus succeeds regardless, and every light node
//! learns the genesis block without participating in consensus.

use bft_cupft::core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::graph::{GdiParams, Generator, ProcessSet};

fn main() {
    // 7 validators (complete trust core), 10 light nodes, 1 Byzantine
    // attached near the core.
    let mut params = GdiParams::new(2);
    params.extended = true;
    params.sink_size = 7;
    params.non_sink_size = 10;
    params.byzantine_count = 1;
    let sys = Generator::from_seed(2718)
        .generate(&params)
        .expect("valid extended-OSR system");

    let fmt = |s: &ProcessSet| {
        let ids: Vec<String> = s.iter().map(|p| p.raw().to_string()).collect();
        format!("{{{}}}", ids.join(","))
    };
    println!(
        "validators (core): {}   light nodes: {}   byzantine: {}",
        fmt(&sys.sink),
        sys.graph.vertex_count() - sys.sink.len() - sys.byzantine.len(),
        fmt(&sys.byzantine),
    );

    let byz = *sys.byzantine.iter().next().expect("one Byzantine");
    let genesis = b"genesis{height:0,state:0xcafe}";
    let mut scenario = Scenario::new(sys.graph.clone(), ProtocolMode::UnknownThreshold)
        .with_byzantine(
            byz.raw(),
            ByzantineStrategy::FakePd {
                claimed: sys.sink.clone(), // pretends to know every validator
            },
        )
        .with_horizon(400_000);
    // the lowest-ID validator proposes the genesis block
    let proposer = *sys.sink.iter().next().expect("non-empty core");
    scenario
        .values
        .insert(proposer, bft_cupft::committee::Value::from_static(genesis));

    let outcome = run_scenario(&scenario);
    let check = outcome.check();

    let deciders = outcome.decisions.values().flatten().count();
    println!(
        "consensus solved: {}   {} of {} correct nodes decided",
        check.consensus_solved(),
        deciders,
        outcome.decisions.len()
    );
    let value = check
        .decided_values
        .iter()
        .next()
        .map(|v| String::from_utf8_lossy(v).into_owned())
        .unwrap_or_default();
    println!("agreed genesis block: {value}");
    println!(
        "simulated time {} ticks, {} messages ({} discovery, {} consensus)",
        outcome.end_time,
        outcome.stats.messages_sent,
        outcome.stats.label_count("GETPDS") + outcome.stats.label_count("SETPDS"),
        outcome.stats.label_count("PREPREPARE")
            + outcome.stats.label_count("PREPARE")
            + outcome.stats.label_count("COMMIT")
            + outcome.stats.label_count("VIEWCHANGE"),
    );
    assert!(check.consensus_solved());
    assert_eq!(value, String::from_utf8_lossy(genesis));
}
