//! Quickstart: solve Byzantine consensus where nobody knows who is in the
//! system or how many faults it tolerates.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Nine processes join knowing only their participant-detector outputs
//! (the Fig. 4a knowledge connectivity graph). No process is given the
//! system membership or the fault threshold. They discover each other
//! (Algorithm 1), identify the unique core (Algorithm 4), run committee
//! consensus inside it, and spread the decision outward (Algorithm 3).

use bft_cupft::core::{run_scenario, ProtocolMode, Scenario};
use bft_cupft::graph::fig4a;

fn main() {
    let fig = fig4a();
    println!("knowledge connectivity graph (Fig. 4a):\n{}", fig.graph());

    let scenario = Scenario::new(fig.graph().clone(), ProtocolMode::UnknownThreshold)
        .with_value(1, b"block #1: genesis")
        .with_seed(2024);
    let outcome = run_scenario(&scenario);

    println!("per-process results:");
    for (id, decision) in &outcome.decisions {
        let core = outcome.detections[id]
            .as_ref()
            .map(|s| {
                let ids: Vec<String> = s.iter().map(|p| p.raw().to_string()).collect();
                format!("{{{}}}", ids.join(","))
            })
            .unwrap_or_else(|| "?".into());
        println!(
            "  {id}: identified core {core}, decided {:?} at t={}",
            decision
                .as_ref()
                .map(|v| String::from_utf8_lossy(v))
                .unwrap_or_default(),
            outcome.decided_times[id].unwrap_or_default(),
        );
    }

    let check = outcome.check();
    println!(
        "\nconsensus solved: {} (agreement={}, termination={}, validity={})",
        check.consensus_solved(),
        check.agreement,
        check.termination,
        check.validity
    );
    println!(
        "simulated time: {} ticks, messages: {}",
        outcome.end_time, outcome.stats.messages_sent
    );
    assert!(check.consensus_solved());
}
