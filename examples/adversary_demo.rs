//! The fault-injection engine end to end: compose a Byzantine strategy
//! from combinators, record an execution, check invariants over the
//! trace, and — when a violation appears on an insufficiently connected
//! graph — shrink the failing case to its minimal form.
//!
//! ```sh
//! cargo run --example adversary_demo
//! ```

use bft_cupft::adversary::{assignment_size, shrink, Assignment, Invariant};
use bft_cupft::core::{
    run_scenario_recorded, ByzantineStrategy, ProtocolMode, Scenario, TamperSpec,
};
use bft_cupft::graph::{fig1a, fig1b, process_set, ProcessId};

fn composite() -> ByzantineStrategy {
    ByzantineStrategy::FlipAfter {
        at: 400,
        before: Box::new(ByzantineStrategy::DelayRelease {
            until: 200,
            inner: Box::new(ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            }),
        }),
        after: Box::new(ByzantineStrategy::Silent),
    }
}

fn main() {
    // 1. A sufficient graph (Fig. 1b is 2-OSR) tolerates the composite
    //    strategy — and a reorder tamper on top.
    let spec = composite();
    println!("composite strategy: {}", spec.label());
    let tolerant = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, spec.clone())
        .with_tamper(TamperSpec::ReorderWindow {
            window: 30,
            seed: 1,
        })
        .with_seed(7);
    let (outcome, trace) = run_scenario_recorded(&tolerant);
    let violations = tolerant
        .trace_checker()
        .with_termination_bound(tolerant.sim.max_time)
        .check(&trace);
    println!(
        "fig1b: solved={} | {} trace events, fingerprint {:#018x}, {} violations",
        outcome.check().consensus_solved(),
        trace.len(),
        trace.fingerprint(),
        violations.len(),
    );
    assert!(violations.is_empty());

    // 2. The same strategy on Fig. 1a (requirements violated): the two
    //    components decide independently and the checker flags Agreement
    //    from the recorded trace.
    let initial: Assignment = vec![(ProcessId::new(4), spec)];
    let scenario_for = |assignment: &Assignment| {
        let mut s = Scenario::new(fig1a().graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_seed(7)
            .with_horizon(50_000);
        for (id, spec) in assignment {
            s = s.with_byzantine(id.raw(), spec.clone());
        }
        s
    };
    let scenario = scenario_for(&initial);
    let (_, trace) = run_scenario_recorded(&scenario);
    let violations = scenario.trace_checker().check(&trace);
    for v in &violations {
        println!("fig1a: VIOLATION {:?} — {}", v.invariant, v.detail);
    }
    assert!(violations
        .iter()
        .any(|v| v.invariant == Invariant::Agreement));

    // 3. Shrink, keeping process 4 faulty: which part of the composite
    //    actually matters? (None of it — bare silence already fails.)
    let mut oracle = |assignment: &Assignment| {
        if assignment.is_empty() {
            return false;
        }
        let s = scenario_for(assignment);
        let (_, trace) = run_scenario_recorded(&s);
        s.trace_checker()
            .check(&trace)
            .iter()
            .any(|v| v.invariant == Invariant::Agreement)
    };
    let shrunk = shrink(initial.clone(), &mut oracle);
    println!(
        "shrunk size {} -> {} in {} steps ({} candidate runs): {}",
        assignment_size(&initial),
        assignment_size(&shrunk.minimal),
        shrunk.steps,
        shrunk.attempts,
        shrunk
            .minimal
            .iter()
            .map(|(id, s)| format!("{}@{}", s.label(), id.raw()))
            .collect::<Vec<_>>()
            .join(", "),
    );
    assert_eq!(
        shrunk.minimal,
        vec![(ProcessId::new(4), ByzantineStrategy::Silent)]
    );
    println!("adversary_demo: ok");
}
