//! The CUP lineage's original motivation (Cavin et al.): self-organizing
//! wireless/sensor networks where each node initially knows only the
//! neighbors it has heard, and the deployment must agree on a common
//! configuration — here, a sampling epoch.
//!
//! ```sh
//! cargo run --example sensor_mesh
//! ```
//!
//! This variant uses the *authenticated BFT-CUP* stack (the fault
//! threshold is provisioned with the firmware: `f = 1`), with one
//! compromised node equivocating its neighbor announcements.

use bft_cupft::core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::graph::{process_set, GdiParams, Generator};

fn main() {
    // A gateway cluster (the sink: 3 well-connected nodes) plus 8 field
    // sensors that only know some gateways/relays, and one compromised
    // sensor.
    let mut params = GdiParams::new(1);
    params.sink_size = 3;
    params.non_sink_size = 8;
    params.byzantine_count = 1;
    params.extra_edges = 2;
    let sys = Generator::from_seed(31337)
        .generate(&params)
        .expect("valid G_di deployment");

    let byz = *sys.byzantine.iter().next().expect("one compromised node");
    println!(
        "deployment: {} nodes, gateways {:?}, compromised node {}",
        sys.graph.vertex_count(),
        sys.sink.iter().map(|p| p.raw()).collect::<Vec<_>>(),
        byz
    );

    let scenario = Scenario::new(sys.graph.clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(
            byz.raw(),
            ByzantineStrategy::EquivocatePd {
                even: sys.sink.clone(),
                odd: process_set([byz.raw()]),
            },
        )
        .with_seed(5);
    let outcome = run_scenario(&scenario);
    let check = outcome.check();

    println!("epoch agreement reached: {}", check.consensus_solved());
    for (id, decision) in &outcome.decisions {
        println!(
            "  sensor {id}: epoch {:?} (t={})",
            decision
                .as_ref()
                .map(|v| String::from_utf8_lossy(v))
                .unwrap_or_default(),
            outcome.decided_times[id].unwrap_or_default()
        );
    }
    println!(
        "energy budget: {} messages over {} simulated ticks",
        outcome.stats.messages_sent, outcome.end_time
    );
    assert!(check.consensus_solved());
}
