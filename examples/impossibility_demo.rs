//! A guided walk through Theorem 7: why BFT-CUP graphs are NOT enough once
//! the fault threshold is withheld — and how the BFT-CUPFT graphs repair
//! it.
//!
//! ```sh
//! cargo run --example impossibility_demo
//! ```

use bft_cupft::core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::graph::{fig2a, fig2b, fig2c, fig4a, process_set};
use bft_cupft::net::DelayPolicy;

const NAIVE: ProtocolMode = ProtocolMode::NaiveGuess { settle_ticks: 3 };

fn main() {
    println!("─── Theorem 7, scene 1: system A (Fig. 2a) ───");
    println!("four processes, process 4 silent, everyone proposes v");
    let a = Scenario::new(fig2a().graph().clone(), NAIVE)
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_value(1, b"v")
        .with_value(2, b"v")
        .with_value(3, b"v");
    let oa = run_scenario(&a);
    println!(
        "  {{1,2,3}} decide {:?} by t={}\n",
        oa.check().decided_values,
        oa.last_decision_time().unwrap_or_default()
    );

    println!("─── scene 2: system B (Fig. 2b) ───");
    println!("four other processes, process 5 silent, everyone proposes u");
    let b = Scenario::new(fig2b().graph().clone(), NAIVE)
        .with_byzantine(5, ByzantineStrategy::Silent)
        .with_value(6, b"u")
        .with_value(7, b"u")
        .with_value(8, b"u");
    let ob = run_scenario(&b);
    println!(
        "  {{6,7,8}} decide {:?} by t={}\n",
        ob.check().decided_values,
        ob.last_decision_time().unwrap_or_default()
    );

    println!("─── scene 3: system AB (Fig. 2c) ───");
    println!("ALL EIGHT are correct; cross-group messages are just slow.");
    println!("{{1,2,3}} cannot distinguish AB from A; {{6,7,8}} cannot from B.");
    let cross = (oa
        .last_decision_time()
        .unwrap_or_default()
        .max(ob.last_decision_time().unwrap_or_default())
        + 1)
        * 10;
    let ab = Scenario::new(fig2c().graph().clone(), NAIVE)
        .with_policy(DelayPolicy::Partitioned {
            delta: 10,
            groups: vec![process_set([1, 2, 3, 4]), process_set([5, 6, 7, 8])],
            cross_delay: cross,
        })
        .with_value(1, b"v")
        .with_value(2, b"v")
        .with_value(3, b"v")
        .with_value(4, b"v")
        .with_value(5, b"u")
        .with_value(6, b"u")
        .with_value(7, b"u")
        .with_value(8, b"u")
        .with_horizon(cross * 4);
    let oab = run_scenario(&ab);
    let check = oab.check();
    println!(
        "  decisions: {:?} — agreement {}",
        check.decided_values, check.agreement
    );
    assert!(!check.agreement, "the impossibility must manifest");
    println!("  ✗ two values decided in one system: consensus is impossible here.\n");

    println!("─── repair: a BFT-CUPFT graph (Fig. 4a) ───");
    println!("extended 2-OSR: a unique maximum-connectivity core exists.");
    let fixed = Scenario::new(fig4a().graph().clone(), ProtocolMode::UnknownThreshold);
    let of = run_scenario(&fixed);
    let check = of.check();
    println!(
        "  all correct processes decide {:?}: consensus solved = {}",
        check.decided_values,
        check.consensus_solved()
    );
    assert!(check.consensus_solved());
}
