//! Acceptance tests for the real-socket runtime.
//!
//! Three claims:
//!
//! 1. **In-process parity** — a `SocketRuntime` hosting every node of a
//!    scenario (all traffic over loopback TCP through its own listener)
//!    reaches exactly the decisions the deterministic simulator reaches,
//!    across three generated graph families.
//! 2. **Multi-process parity** — the `socket_cell` driver binary spawns
//!    one OS process per vertex, runs consensus over genuine inter-process
//!    TCP, and asserts decision parity against the simulator itself
//!    (printing the `SOCKET PARITY OK` line this test greps, same as CI).
//! 3. **Tamper order** — a serialized [`Tamper`] installed on the socket
//!    runtime sees each sender's emissions in program order, mirroring
//!    `router_shards::tamper_sees_per_sender_emission_order_on_every_shard_count`
//!    for the TCP substrate: encode/enqueue happens at send time on the
//!    sending actor's thread, so the order-asserting tamper must never
//!    trip even though deliveries fan out across connections.

use std::process::Command;
use std::time::Duration;

use bft_cupft::core::{ProtocolMode, RuntimeKind, Scenario};
use bft_cupft::graph::{GraphFamily, ProcessId};
use bft_cupft::net::{Actor, Context, Fate, Labeled, Runtime, SocketConfig, SocketRuntime, Tamper};
use bft_cupft::wire::{Decode, Encode, Reader, WireError};

/// Retunes tick-denominated knobs for the socket substrate (read as
/// milliseconds there, same as the threaded retuning).
fn socket_variant(scenario: &Scenario) -> Scenario {
    let mut s = scenario
        .clone()
        .with_threaded_wall_timeout(Duration::from_secs(60));
    s.discovery_period = 100;
    s.view_timeout_base = 4_000;
    s
}

#[test]
fn socket_decisions_match_sim_on_three_families() {
    let families = [
        GraphFamily::erdos_renyi(12, 1),
        GraphFamily::k_diamond(12, 1),
        GraphFamily::ring_of_cliques(12, 1),
    ];
    for family in families {
        let label = family.label();
        let sample = family.generate(11).expect("valid family parameterization");
        let scenario =
            Scenario::new(sample.system.graph, ProtocolMode::KnownThreshold(1)).with_seed(5);
        let sim = scenario.run_on(RuntimeKind::Sim);
        assert!(sim.check().consensus_solved(), "{label} on sim: {sim:?}");
        let socket = socket_variant(&scenario).run_on(RuntimeKind::Socket);
        assert!(
            socket.check().consensus_solved(),
            "{label} on socket: {:?}",
            socket.decisions
        );
        assert_eq!(
            sim.decisions, socket.decisions,
            "{label}: socket decisions must equal sim"
        );
        // Socket runs deliver what they send (no tamper, no loss) —
        // whatever was still in flight at shutdown is the only slack.
        assert!(
            socket.stats.messages_delivered <= socket.stats.messages_sent,
            "{label}: delivered > sent"
        );
    }
}

/// Runs the `socket_cell` coordinator (which spawns one OS process per
/// vertex) and asserts it reports parity — a real distributed deployment
/// of the full stack, exercised from the test suite exactly as CI runs it.
fn cell_reports_parity(family: &str, n: usize) {
    let out = Command::new(env!("CARGO_BIN_EXE_socket_cell"))
        .args(["--family", family, "--n", &n.to_string(), "--f", "1"])
        .output()
        .expect("run socket_cell");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "socket_cell {family} n={n} failed: {stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("SOCKET PARITY OK"),
        "missing parity line: {stdout}\n{stderr}"
    );
}

#[test]
fn multiprocess_cell_matches_sim_on_k_diamond() {
    cell_reports_parity("k-diamond", 10);
}

#[test]
fn multiprocess_cell_matches_sim_on_erdos_renyi() {
    cell_reports_parity("erdos-renyi", 10);
}

// ---- tamper order over TCP (mirrors tests/router_shards.rs) ----

const FLOOD_N: u64 = 9;
const FLOOD_R: u64 = 5;

#[derive(Debug, Clone, PartialEq, Eq)]
enum FloodMsg {
    Flood,
    Done,
}

impl Labeled for FloodMsg {
    fn label(&self) -> &'static str {
        match self {
            FloodMsg::Flood => "FLOOD",
            FloodMsg::Done => "DONE",
        }
    }
}

impl Encode for FloodMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            FloodMsg::Flood => 0,
            FloodMsg::Done => 1,
        });
    }
}

impl Decode for FloodMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(FloodMsg::Flood),
            1 => Ok(FloodMsg::Done),
            tag => Err(WireError::BadTag {
                ty: "FloodMsg",
                tag,
            }),
        }
    }
}

/// Sends `FLOOD_R` flood rounds plus one `Done` to every peer at startup,
/// halts after receiving a preset count (same shape as the threaded
/// runtime's stats-conservation flood).
struct FloodActor {
    id: ProcessId,
    peers: Vec<ProcessId>,
    expect: u64,
    got: u64,
}

impl Actor<FloodMsg> for FloodActor {
    fn id(&self) -> ProcessId {
        self.id
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn on_start(&mut self, ctx: &mut Context<FloodMsg>) {
        for _ in 0..FLOOD_R {
            for &peer in &self.peers {
                ctx.send(peer, FloodMsg::Flood);
            }
        }
        for &peer in &self.peers {
            ctx.send(peer, FloodMsg::Done);
        }
    }
    fn on_message(&mut self, _: ProcessId, _: FloodMsg, ctx: &mut Context<FloodMsg>) {
        self.got += 1;
        if self.got >= self.expect {
            ctx.halt();
        }
    }
}

fn flood_actors() -> Vec<Box<dyn Actor<FloodMsg>>> {
    let ids: Vec<ProcessId> = (1..=FLOOD_N).map(ProcessId::new).collect();
    ids.iter()
        .map(|&id| {
            Box::new(FloodActor {
                id,
                peers: ids.iter().copied().filter(|&p| p != id).collect(),
                expect: (FLOOD_N - 1) * (FLOOD_R + 1),
                got: 0,
            }) as Box<dyn Actor<FloodMsg>>
        })
        .collect()
}

/// Asserts the per-sender monotone round structure the flood emits
/// (`FLOOD_R` batches of peers in ID order, then the `Done` batch) — any
/// reordering before the tamper point would trip it. Same checker as the
/// sharded-router mirror test.
struct OrderAssertingTamper {
    last_to: std::collections::BTreeMap<ProcessId, (u64, u64)>,
}

impl Tamper<FloodMsg> for OrderAssertingTamper {
    fn disposition(&mut self, from: ProcessId, to: ProcessId, _: &'static str, _: u64) -> Fate {
        let entry = self.last_to.entry(from).or_insert((0, 0));
        let to_idx = to.raw();
        if to_idx <= entry.1 {
            entry.0 += 1; // new round wrapped past the sender's peer list
            assert!(
                entry.0 < FLOOD_R + 1,
                "sender {from} emitted more rounds than it floods"
            );
        }
        entry.1 = to_idx;
        Fate::Deliver
    }
}

#[test]
fn socket_tamper_sees_per_sender_emission_order() {
    let mut rt: SocketRuntime<FloodMsg> = SocketRuntime::new(SocketConfig {
        wall_timeout: Duration::from_secs(30),
        ..SocketConfig::default()
    })
    .expect("bind");
    for actor in flood_actors() {
        rt.add_actor(actor);
    }
    Runtime::set_tamper(
        &mut rt,
        Box::new(OrderAssertingTamper {
            last_to: std::collections::BTreeMap::new(),
        }),
    );
    let report = rt.run_to_completion();
    assert!(report.all_halted, "{report:?}");
    // Every actor received everything it expected before halting, so the
    // drop-free TCP run conserves the totals exactly.
    let total = FLOOD_N * (FLOOD_N - 1) * (FLOOD_R + 1);
    assert_eq!(report.stats.messages_sent, total);
    assert_eq!(report.stats.messages_delivered, total);
    assert_eq!(report.stats.messages_dropped, 0);
}
