//! Acceptance tests for the sharded threaded router plane.
//!
//! Three claims, each swept across `router_shards ∈ {1, 2, 4}`:
//!
//! 1. **Decision parity** — the threaded runtime reaches exactly the
//!    decisions the deterministic simulator reaches, no matter how many
//!    router shards carry the traffic (`router_shards = 1` being the
//!    bit-compatible classic single-router loop).
//! 2. **Stats conservation** — with a protocol whose traffic is
//!    timing-independent, the per-shard `NetStats` blocks merge to
//!    exactly the totals the single router records: messages and payload
//!    units are conserved across the shard split.
//! 3. **Tamper semantics under sharding** — a `TamperSpec` (the
//!    `adversary_sweep` grid's within-model drop, plus a reorder chain)
//!    is serialized through the dedicated tamper shard, so drop/delay
//!    accounting and consensus verdicts are independent of shard count.

use std::time::Duration;

use bft_cupft::core::{
    ByzantineStrategy, FaultCase, ProtocolMode, RuntimeKind, Scenario, ScenarioGrid, TamperSpec,
};
use bft_cupft::graph::{fig1b, process_set, GraphFamily, ProcessId};
use bft_cupft::net::threaded::{run_threaded, ThreadedConfig};
use bft_cupft::net::{Actor, Context, Labeled, NetStats, Runtime, Tamper, ThreadedRuntime};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Retunes tick-denominated knobs for the threaded substrate (they are
/// read as milliseconds there) and pins the shard count.
fn threaded_variant(scenario: &Scenario, shards: usize) -> Scenario {
    let mut s = scenario.clone().with_router_shards(shards);
    s.discovery_period = 10;
    s.view_timeout_base = 2_000;
    s
}

/// The parity workloads: the Fig. 1(b) witness graph and a generated
/// Erdős–Rényi planted-sink topology (the family whose Θ(n²) traffic
/// motivated sharding in the first place).
fn parity_scenarios() -> Vec<(String, Scenario)> {
    let er = GraphFamily::erdos_renyi(16, 1)
        .generate(11)
        .expect("valid family parameterization");
    vec![
        (
            "fig1b/silent4".into(),
            Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
                .with_byzantine(4, ByzantineStrategy::Silent)
                .with_seed(3),
        ),
        (
            "erdos-renyi@n16".into(),
            Scenario::new(er.system.graph, ProtocolMode::KnownThreshold(1)).with_seed(5),
        ),
    ]
}

#[test]
fn decisions_match_sim_at_every_shard_count() {
    for (label, scenario) in parity_scenarios() {
        let sim = scenario.run_on(RuntimeKind::Sim);
        assert!(sim.check().consensus_solved(), "{label} on sim: {sim:?}");
        for shards in SHARD_COUNTS {
            let threaded = threaded_variant(&scenario, shards).run_on(RuntimeKind::Threaded);
            assert!(
                threaded.check().consensus_solved(),
                "{label} threaded x{shards}: {:?}",
                threaded.decisions
            );
            assert_eq!(
                sim.decisions, threaded.decisions,
                "{label}: threaded (shards={shards}) decisions must equal sim"
            );
        }
    }
}

#[test]
fn suite_shard_knob_pins_every_entry() {
    let mut suite = ScenarioGrid::new()
        .graph(
            "fig1b",
            fig1b().graph().clone(),
            ProtocolMode::KnownThreshold(1),
        )
        .fault(FaultCase::none())
        .fault(FaultCase::silent(4))
        .seeds(0..2)
        .build();
    for entry in suite.entries_mut() {
        entry.scenario.discovery_period = 10;
        entry.scenario.view_timeout_base = 2_000;
    }
    suite.set_router_shards(2);
    for entry in suite.entries() {
        assert_eq!(entry.scenario.router_shards, Some(2));
    }
    let report = suite.run(RuntimeKind::Threaded);
    assert!(
        report.all_solved(),
        "failures under shards=2: {:?}",
        report.failures()
    );
}

// ---- stats conservation with a timing-independent workload ----

/// Number of flood actors.
const FLOOD_N: u64 = 9;
/// Rounds each actor floods at startup.
const FLOOD_R: u64 = 5;
/// Payload units per flood message.
const FLOOD_PAYLOAD: u64 = 3;

#[derive(Clone)]
enum FloodMsg {
    /// A payload-bearing round message.
    Flood,
    /// The sender's final message, emitted after all its floods — so a
    /// receiver that has counted every expected message knows the
    /// router plane has already processed (delivered *or* dropped)
    /// everything sent before it by the same sender.
    Done,
}

impl Labeled for FloodMsg {
    fn label(&self) -> &'static str {
        match self {
            FloodMsg::Flood => "FLOOD",
            FloodMsg::Done => "DONE",
        }
    }
    fn payload_units(&self) -> u64 {
        match self {
            FloodMsg::Flood => FLOOD_PAYLOAD,
            FloodMsg::Done => 0,
        }
    }
}

/// Sends `FLOOD_R` flood rounds plus one `Done` to every peer at
/// startup, halts after receiving a preset count. Traffic totals are
/// exact functions of the topology — independent of delivery timing and
/// shard interleaving — and the trailing per-sender `Done` makes the
/// halt condition causally later than every drop decision, so the final
/// stats are exact, not racy.
struct FloodActor {
    id: ProcessId,
    peers: Vec<ProcessId>,
    expect: u64,
    got: u64,
}

impl Actor<FloodMsg> for FloodActor {
    fn id(&self) -> ProcessId {
        self.id
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn on_start(&mut self, ctx: &mut Context<FloodMsg>) {
        for _ in 0..FLOOD_R {
            for &peer in &self.peers {
                ctx.send(peer, FloodMsg::Flood);
            }
        }
        for &peer in &self.peers {
            ctx.send(peer, FloodMsg::Done);
        }
        if self.got >= self.expect {
            ctx.halt();
        }
    }
    fn on_message(&mut self, _: ProcessId, _: FloodMsg, ctx: &mut Context<FloodMsg>) {
        self.got += 1;
        if self.got >= self.expect {
            ctx.halt();
        }
    }
}

/// Builds the all-to-all flood; `expect_floods_from` counts the senders
/// whose floods each actor waits for (all peers, or all peers minus
/// tamper-silenced ones); every actor additionally waits for one `Done`
/// per peer.
fn flood_actors(expect_floods_from: impl Fn(ProcessId) -> u64) -> Vec<Box<dyn Actor<FloodMsg>>> {
    let ids: Vec<ProcessId> = (1..=FLOOD_N).map(ProcessId::new).collect();
    ids.iter()
        .map(|&id| {
            Box::new(FloodActor {
                id,
                peers: ids.iter().copied().filter(|&p| p != id).collect(),
                expect: expect_floods_from(id) * FLOOD_R + (FLOOD_N - 1),
                got: 0,
            }) as Box<dyn Actor<FloodMsg>>
        })
        .collect()
}

fn flood_config(shards: usize) -> ThreadedConfig {
    ThreadedConfig {
        wall_timeout: Duration::from_secs(20),
        router_shards: shards,
        seed: 7,
        ..ThreadedConfig::default()
    }
}

#[test]
fn netstats_totals_are_conserved_across_shards() {
    let floods = FLOOD_N * (FLOOD_N - 1) * FLOOD_R;
    let dones = FLOOD_N * (FLOOD_N - 1);
    let total = floods + dones;
    let mut reference: Option<NetStats> = None;
    for shards in SHARD_COUNTS {
        let report = run_threaded(flood_actors(|_| FLOOD_N - 1), flood_config(shards));
        assert!(report.all_halted, "shards={shards}: {report:?}");
        let stats = &report.stats;
        assert_eq!(stats.messages_sent, total, "shards={shards}");
        assert_eq!(stats.messages_delivered, total, "shards={shards}");
        assert_eq!(stats.messages_dropped, 0, "shards={shards}");
        assert_eq!(
            stats.payload_units,
            floods * FLOOD_PAYLOAD,
            "shards={shards}"
        );
        assert_eq!(stats.label_count("FLOOD"), floods, "shards={shards}");
        assert_eq!(stats.label_count("DONE"), dones, "shards={shards}");
        assert_eq!(
            stats.label_payload("FLOOD"),
            floods * FLOOD_PAYLOAD,
            "shards={shards}"
        );
        // Payload is counted again at actual delivery — once per
        // delivered message, however many shard hops it took — and the
        // fully-delivered run conserves it exactly.
        assert_eq!(
            stats.payload_delivered_units,
            floods * FLOOD_PAYLOAD,
            "shards={shards}"
        );
        assert_eq!(
            stats.payload_delivered_units,
            stats.payload_delivered(),
            "shards={shards}"
        );
        // The merged multi-shard stats equal the single-router stats
        // exactly — the whole NetStats surface, not just the totals.
        match &reference {
            None => reference = Some(stats.clone()),
            Some(single) => assert_eq!(
                single, stats,
                "shards={shards}: merged stats must equal the single-router block"
            ),
        }
    }
}

/// Drops only the payload-bearing floods of one sender; its trailing
/// `Done` messages still flow, so every receiver's halt stays causally
/// behind the drop decisions (the tamper shard handles one sender's
/// emissions in order).
struct DropFloodsFrom {
    sender: ProcessId,
}

impl Tamper<FloodMsg> for DropFloodsFrom {
    fn disposition(
        &mut self,
        from: ProcessId,
        _: ProcessId,
        label: &'static str,
        _: u64,
    ) -> bft_cupft::net::Fate {
        if from == self.sender && label == "FLOOD" {
            bft_cupft::net::Fate::Drop
        } else {
            bft_cupft::net::Fate::Deliver
        }
    }
}

#[test]
fn tamper_drop_accounting_is_exact_under_sharding() {
    let silenced = ProcessId::new(1);
    let floods = FLOOD_N * (FLOOD_N - 1) * FLOOD_R;
    let dones = FLOOD_N * (FLOOD_N - 1);
    let total = floods + dones;
    let dropped = (FLOOD_N - 1) * FLOOD_R;
    for shards in SHARD_COUNTS {
        let actors = flood_actors(|id| {
            if id == silenced {
                FLOOD_N - 1 // still hears everyone's floods
            } else {
                FLOOD_N - 2 // everyone's floods except the silenced sender's
            }
        });
        let mut rt: ThreadedRuntime<FloodMsg> = ThreadedRuntime::new(flood_config(shards));
        for actor in actors {
            rt.add_actor(actor);
        }
        Runtime::set_tamper(&mut rt, Box::new(DropFloodsFrom { sender: silenced }));
        let report = rt.run_to_completion();
        assert!(report.all_halted, "shards={shards}: {report:?}");
        let stats = &report.stats;
        assert_eq!(stats.messages_sent, total, "shards={shards}");
        assert_eq!(stats.messages_dropped, dropped, "shards={shards}");
        assert_eq!(stats.messages_delivered, total - dropped, "shards={shards}");
        assert_eq!(
            stats.payload_dropped,
            dropped * FLOOD_PAYLOAD,
            "shards={shards}"
        );
        assert_eq!(
            stats.payload_delivered(),
            (floods - dropped) * FLOOD_PAYLOAD,
            "shards={shards}"
        );
        // Delivery-side accounting agrees: everything the tamper spared
        // was delivered, and only counted once.
        assert_eq!(
            stats.payload_delivered_units,
            (floods - dropped) * FLOOD_PAYLOAD,
            "shards={shards}"
        );
    }
}

/// Routing the flood through a verification-stage worker pool (a no-op
/// preflight here — the stats must not care what the stage computes)
/// leaves the whole `NetStats` surface byte-identical to the unstaged
/// single-router reference: staging moves work, never accounting.
#[test]
fn staged_delivery_conserves_netstats_exactly() {
    use bft_cupft::net::Preflight;

    struct NoopStage;
    impl Preflight<FloodMsg> for NoopStage {
        fn preflight(&self, _: ProcessId, _: ProcessId, _: &FloodMsg) {}
    }

    let floods = FLOOD_N * (FLOOD_N - 1) * FLOOD_R;
    let dones = FLOOD_N * (FLOOD_N - 1);
    let reference = {
        let report = run_threaded(flood_actors(|_| FLOOD_N - 1), flood_config(1));
        assert!(report.all_halted, "unstaged reference: {report:?}");
        report.stats
    };
    for shards in SHARD_COUNTS {
        for workers in [1, 3] {
            let mut config = flood_config(shards);
            config.verify_workers = workers;
            let mut rt: ThreadedRuntime<FloodMsg> = ThreadedRuntime::new(config);
            for actor in flood_actors(|_| FLOOD_N - 1) {
                rt.add_actor(actor);
            }
            rt.set_preflight(std::sync::Arc::new(NoopStage));
            let report = rt.run_to_completion();
            assert!(
                report.all_halted,
                "shards={shards} workers={workers}: {report:?}"
            );
            assert_eq!(
                report.stats, reference,
                "shards={shards} workers={workers}: staged stats must equal unstaged"
            );
            assert_eq!(report.stats.messages_delivered, floods + dones);
            assert_eq!(report.stats.payload_delivered_units, floods * FLOOD_PAYLOAD);
        }
    }
}

/// A serialized tamper must see each sender's emissions in order even
/// when deliveries fan out across shards: this tamper asserts the
/// per-sender monotone round structure the flood emits (R batches of
/// peers in ID order) — any reordering before the tamper would trip it.
struct OrderAssertingTamper {
    last_to: std::collections::BTreeMap<ProcessId, (u64, u64)>, // sender -> (round, last peer idx)
}

impl Tamper<FloodMsg> for OrderAssertingTamper {
    fn disposition(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        _: &'static str,
        _: u64,
    ) -> bft_cupft::net::Fate {
        let entry = self.last_to.entry(from).or_insert((0, 0));
        let to_idx = to.raw();
        if to_idx <= entry.1 {
            entry.0 += 1; // new round wrapped past the sender's peer list
            assert!(
                entry.0 < FLOOD_R + 1,
                "sender {from} emitted more rounds than it floods"
            );
        }
        entry.1 = to_idx;
        bft_cupft::net::Fate::Deliver
    }
}

#[test]
fn tamper_sees_per_sender_emission_order_on_every_shard_count() {
    for shards in SHARD_COUNTS {
        let mut rt: ThreadedRuntime<FloodMsg> = ThreadedRuntime::new(flood_config(shards));
        for actor in flood_actors(|_| FLOOD_N - 1) {
            rt.add_actor(actor);
        }
        Runtime::set_tamper(
            &mut rt,
            Box::new(OrderAssertingTamper {
                last_to: std::collections::BTreeMap::new(),
            }),
        );
        let report = rt.run_to_completion();
        assert!(report.all_halted, "shards={shards}: {report:?}");
    }
}

/// The `adversary_sweep` within-model cell (Byzantine process 4 forging a
/// PD while the network drops its output, chained behind a reorder
/// window) keeps its verdict and its drop accounting on every shard
/// count.
#[test]
fn adversary_sweep_tamper_cell_solves_under_sharding() {
    let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(
            4,
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
        )
        .with_tamper(TamperSpec::Chain(vec![
            TamperSpec::ReorderWindow { window: 5, seed: 9 },
            TamperSpec::DropFrom {
                senders: process_set([4]),
            },
        ]))
        .with_seed(2);
    let sim = scenario.run_on(RuntimeKind::Sim);
    assert!(sim.check().consensus_solved(), "sim: {:?}", sim.decisions);
    for shards in [2, 4] {
        let outcome = threaded_variant(&scenario, shards).run_on(RuntimeKind::Threaded);
        assert!(
            outcome.check().consensus_solved(),
            "shards={shards}: {:?}",
            outcome.decisions
        );
        assert!(
            outcome.stats.messages_dropped > 0,
            "shards={shards}: the drop tamper must keep biting"
        );
        assert_eq!(
            sim.decisions, outcome.decisions,
            "shards={shards}: tampered decisions must equal sim"
        );
    }
}
