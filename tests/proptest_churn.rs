//! Property tests for the churn layer.
//!
//! Two properties:
//!
//! 1. **Snapshot round-trip** — the crash snapshot codec is the identity:
//!    for any mid-run [`DiscoveryState`] (random family topology, random
//!    seed), `from_bytes(to_bytes())` restores a state whose re-encoding
//!    is byte-identical and whose [`KnowledgeView`] equals the original.
//!    This is what makes crash-rejoin deterministic: the recovered node's
//!    knowledge is exactly the encoded knowledge, nothing renormalized.
//! 2. **Churn-agreement** — under a random churn schedule (join, leave,
//!    crash-rejoin over periphery vertices) composed with a random
//!    within-model message reordering, no two processes that both decide
//!    ever decide differently. Liveness is *not* asserted (a hostile
//!    schedule may legitimately strand a joiner); the weakened agreement
//!    invariant must still hold on whatever did decide.

use bft_cupft::adversary::{ChurnEvent, ChurnSpec, Invariant, TamperSpec};
use bft_cupft::core::{run_scenario_recorded, ProtocolMode, Scenario};
use bft_cupft::detector::SystemSetup;
use bft_cupft::discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState, GossipMode};
use bft_cupft::graph::{process_set, FamilySample, GraphFamily};
use bft_cupft::net::sim::Simulation;
use bft_cupft::net::{DelayPolicy, SimConfig};
use proptest::prelude::*;

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// A family sample picked by index, at a small size (the properties are
/// about protocol logic, not scale).
fn arb_sample() -> impl Strategy<Value = FamilySample> {
    (0u8..4, 10usize..20, 0u64..50).prop_map(|(which, size, seed)| {
        let family = match which {
            0 => GraphFamily::erdos_renyi(size, 1),
            1 => GraphFamily::ring_of_cliques(size, 1),
            2 => GraphFamily::k_diamond(size, 1),
            _ => GraphFamily::bridged_partition(size.max(12), 1),
        };
        family
            .scaled(size)
            .generate(seed)
            .expect("valid family parameters")
    })
}

/// A random churn schedule over the sample's three highest vertex IDs
/// (joiner / leaver / crash-recoverer, each independently present), with
/// ticks drawn from the whole discovery window. Schedules may be hostile
/// to liveness — that is the point; only agreement is asserted.
fn arb_churn(n_events: std::ops::Range<u8>) -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    proptest::collection::vec(
        (0u8..3, 1u64..1_500, 50u64..800),
        n_events.start as usize..n_events.end as usize,
    )
}

fn churn_spec_for(sample: &FamilySample, raw_events: &[(u8, u64, u64)]) -> ChurnSpec {
    let mut ids: Vec<u64> = sample.system.graph.vertices().map(|v| v.raw()).collect();
    ids.sort_unstable();
    let top: Vec<u64> = ids.iter().rev().take(3).copied().collect();
    let mut events = Vec::new();
    for (slot, (kind, tick, extra)) in raw_events.iter().enumerate() {
        // One node per slot: the spec rejects two events for one process.
        let Some(&node) = top.get(slot) else { break };
        let node = bft_cupft::graph::ProcessId::new(node);
        events.push(match kind {
            0 => ChurnEvent::JoinAt {
                tick: *tick,
                node,
                seed_peers: process_set([ids[0]]),
            },
            1 => ChurnEvent::LeaveAt { tick: *tick, node },
            _ => ChurnEvent::CrashRecoverAt {
                tick: *tick,
                node,
                down_for: *extra,
            },
        });
    }
    ChurnSpec::new(events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `from_bytes ∘ to_bytes` is the identity on mid-run discovery
    /// states: byte-identical re-encoding, equal knowledge views.
    #[test]
    fn snapshot_codec_round_trips_mid_run_states(
        sample in arb_sample(),
        seed in 0u64..500,
    ) {
        let graph = &sample.system.graph;
        let setup = SystemSetup::new(graph);
        let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
            seed,
            max_time: 20_000,
            policy: psync(),
        });
        for v in graph.vertices() {
            let state = DiscoveryState::from_setup(&setup, v)
                .unwrap()
                .with_gossip(GossipMode::Delta);
            sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
        }
        // Stop mid-run on purpose: partially-propagated states exercise
        // the codec harder than converged ones.
        sim.run_until(|s| s.now() > 900);
        for (id, actor) in sim.into_actors() {
            let d = actor
                .as_any()
                .downcast_ref::<DiscoveryActor>()
                .expect("discovery actor");
            let bytes = d.state().to_bytes();
            let restored = DiscoveryState::from_bytes(&bytes, setup.registry().clone())
                .expect("round-trip decodes");
            prop_assert_eq!(
                restored.to_bytes(),
                bytes,
                "re-encoding must be byte-identical for {}",
                id
            );
            prop_assert_eq!(restored.view(), d.state().view());
        }
    }

    /// No churn schedule (composed with within-model reordering) makes
    /// two deciders disagree.
    #[test]
    fn random_churn_never_breaks_agreement(
        sample in arb_sample(),
        raw_events in arb_churn(1..4),
        seed in 0u64..200,
        window in 1u64..40,
    ) {
        let spec = churn_spec_for(&sample, &raw_events);
        let scenario = Scenario::new(
            sample.system.graph.clone(),
            ProtocolMode::KnownThreshold(1),
        )
        .with_seed(seed)
        .with_policy(psync())
        .with_horizon(100_000)
        .with_tamper(TamperSpec::ReorderWindow { window, seed })
        .with_churn(spec);
        let (outcome, trace) = run_scenario_recorded(&scenario);
        // Agreement over whatever decided — liveness is out of scope for
        // hostile schedules.
        let decided: std::collections::BTreeSet<_> =
            outcome.decisions.values().flatten().collect();
        prop_assert!(
            decided.len() <= 1,
            "churn must not split decisions: {:?}",
            outcome.decisions
        );
        let agreement_violations: Vec<_> = scenario
            .churn_trace_checker(&outcome)
            .check(&trace)
            .into_iter()
            .filter(|v| v.invariant == Invariant::ChurnAgreement)
            .collect();
        prop_assert!(
            agreement_violations.is_empty(),
            "churn-agreement violated: {:?}",
            agreement_violations
        );
    }
}
