//! The family × size acceptance sweep: `ScenarioGrid::family` drives four
//! topology families at three sizes through consensus on *both* runtimes,
//! and a per-family fault/strategy sweep silences a structurally
//! expendable vertex (one whose removal keeps the safe subgraph inside
//! the family's advertised conditions) to confirm the generated systems
//! tolerate the faults their parameters promise.
//!
//! `scripts/verify.sh --quick` fronts this test as the family-sweep gate.

use bft_cupft::core::{
    ByzantineStrategy, FaultCase, ProtocolMode, RuntimeKind, ScenarioGrid, ScenarioSuite,
    StrategyCase,
};
use bft_cupft::graph::GraphFamily;
use bft_cupft::net::DelayPolicy;

const SIZES: [usize; 3] = [10, 14, 18];

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// The sweep families. Ring and bridge widths are `f + 2` so that the
/// fault sweep can remove one vertex and stay within the `(f+1)`-OSR
/// conditions; Erdős–Rényi and k-diamond are already one-periphery-vertex
/// resilient (peripheries never route through each other's victims).
fn sweep_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::erdos_renyi(16, 1),
        GraphFamily::RingOfCliques {
            cliques: 3,
            clique_size: 4,
            bridges: 3,
            fault_threshold: 1,
        },
        GraphFamily::k_diamond(16, 1),
        GraphFamily::BridgedPartition {
            a_size: 8,
            sink_size: 3,
            bridge_width: 3,
            fault_threshold: 1,
        },
    ]
}

fn honest_grid(seeds: std::ops::Range<u64>, sizes: &[usize]) -> ScenarioSuite {
    let mut grid = ScenarioGrid::new();
    for family in sweep_families() {
        grid = grid.family(
            &family,
            sizes.iter().copied(),
            11,
            ProtocolMode::KnownThreshold(1),
        );
    }
    grid.policy("psync", psync(), 400_000).seeds(seeds).build()
}

#[test]
fn four_families_three_sizes_solve_on_simulation() {
    let suite = honest_grid(0..2, &SIZES);
    assert_eq!(suite.len(), 24); // 4 families x 3 sizes x 2 seeds
    let report = suite.run(RuntimeKind::Sim);
    assert!(
        report.all_solved(),
        "failures on sim: {:?}",
        report.failures()
    );
}

#[test]
fn four_families_three_sizes_solve_on_threads() {
    let mut suite = honest_grid(0..1, &SIZES);
    assert_eq!(suite.len(), 12); // 4 families x 3 sizes x 1 seed

    // Tick-denominated knobs read as milliseconds on the threaded
    // substrate. Detection re-runs on every view change, so a generous
    // discovery period costs little latency while keeping the per-tick
    // candidate search (expensive on whole-graph sinks like the ring) off
    // the CPU; the long view timeout keeps real scheduling jitter from
    // triggering spurious view changes.
    for entry in suite.entries_mut() {
        entry.scenario.discovery_period = 200;
        entry.scenario.view_timeout_base = 4_000;
    }
    let report = suite.run(RuntimeKind::Threaded);
    assert!(
        report.all_solved(),
        "failures on threads: {:?}",
        report.failures()
    );
}

/// Silencing the highest vertex ID — always a periphery/apex/outer-block
/// member under the families' core-first ID layout — must leave consensus
/// solvable: the sweep families are parameterized so one vertex removal
/// keeps the safe subgraph within the advertised conditions.
#[test]
fn families_tolerate_a_silent_expendable_vertex() {
    let mut suite = ScenarioSuite::new();
    for family in sweep_families() {
        for size in [10usize, 14] {
            let scaled = family.scaled(size);
            let sample = scaled.generate(11).unwrap();
            let victim = sample
                .system
                .graph
                .vertices()
                .map(|v| v.raw())
                .max()
                .unwrap();
            assert!(
                !sample
                    .system
                    .sink
                    .contains(&bft_cupft::graph::ProcessId::new(victim))
                    || sample.system.sink.len() == sample.system.graph.vertex_count(),
                "{}: victim must be expendable",
                scaled.label()
            );
            suite.extend(
                ScenarioGrid::new()
                    .graph(
                        format!("{}@n{size}", family.name()),
                        sample.system.graph,
                        ProtocolMode::KnownThreshold(1),
                    )
                    .fault(FaultCase::none())
                    .strategy(StrategyCase::none())
                    .strategy(StrategyCase::single(victim, ByzantineStrategy::Silent))
                    .policy("psync", psync(), 400_000)
                    .seeds(0..1)
                    .build(),
            );
        }
    }
    assert_eq!(suite.len(), 16); // 4 families x 2 sizes x {honest, silent}
    let report = suite.run(RuntimeKind::Sim);
    assert!(
        report.all_solved(),
        "failures with silent vertex: {:?}",
        report.failures()
    );
}
