//! Property tests for the observability layer: sharded recording must be
//! observationally equivalent to recording everything through a single
//! recorder.
//!
//! The threaded router keeps a private `Histogram` per shard and folds
//! them into the shared [`Recorder`] with `merge_hist` in shard-index
//! order; these properties pin the algebra that makes that fold exact —
//! merge conserves count/sum/extremes and lands every sample in the same
//! log2 bucket a single recorder would have used, so quantiles cannot
//! drift with the shard count.

use bft_cupft::obs::{Histogram, Recorder};
use proptest::prelude::*;

/// Samples spanning the full bucket range: small values, bucket
/// boundaries (2^k ± 1), and the saturating top end.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..64, 0u8..4).prop_map(|(shift, kind)| {
            let base = 1u64 << shift;
            match kind {
                0 => shift,                  // small linear values
                1 => base,                   // exact bucket lower bound
                2 => base.saturating_sub(1), // bucket upper bound
                _ => u64::MAX - shift,       // saturating top end
            }
        }),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a sample stream across any number of shard-local
    /// histograms and merging them equals recording the stream into one
    /// histogram — regardless of how samples are dealt to shards.
    #[test]
    fn merged_shard_histograms_equal_a_single_histogram(
        samples in arb_samples(),
        shards in 1usize..8,
    ) {
        let mut single = Histogram::default();
        let mut shard_hists = vec![Histogram::default(); shards];
        for (i, &v) in samples.iter().enumerate() {
            single.record(v);
            shard_hists[i % shards].record(v);
        }
        let mut merged = Histogram::default();
        for shard in &shard_hists {
            merged.merge(shard);
        }
        prop_assert_eq!(&merged, &single);
        prop_assert_eq!(merged.count(), samples.len() as u64);
        prop_assert_eq!(merged.p50(), single.p50());
        prop_assert_eq!(merged.p99(), single.p99());
        prop_assert_eq!(merged.p999(), single.p999());
    }

    /// The same equivalence through the [`Recorder`] API the router
    /// actually uses: N shards folded with `merge_hist` produce the same
    /// report histogram as one recorder seeing every sample directly.
    #[test]
    fn sharded_recorders_fold_to_the_single_recorder_report(
        samples in arb_samples(),
        shards in 1usize..8,
    ) {
        let single = Recorder::new();
        let sharded = Recorder::new();
        let mut shard_hists = vec![Histogram::default(); shards];
        for (i, &v) in samples.iter().enumerate() {
            single.hist_record("router_inbox_depth", v);
            shard_hists[i % shards].record(v);
        }
        for shard in &shard_hists {
            sharded.merge_hist("router_inbox_depth", shard);
        }
        let a = single.snapshot();
        let b = sharded.snapshot();
        prop_assert_eq!(
            a.histogram("router_inbox_depth"),
            b.histogram("router_inbox_depth")
        );
    }

    /// Quantiles are always bracketed by the recorded extremes, merged or
    /// not (the clamp that keeps bucket-derived quantiles honest).
    #[test]
    fn quantiles_stay_within_recorded_extremes(samples in arb_samples()) {
        let mut h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        if let (Some(min), Some(max)) = (h.min(), h.max()) {
            for q in [h.p50(), h.p99(), h.p999()] {
                prop_assert!(min <= q && q <= max);
            }
        }
    }
}
