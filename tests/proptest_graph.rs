//! Property-based tests over the graph substrate's public API.

use bft_cupft::graph::{
    condensation, process_set, strongly_connected_components, DiGraph, DisjointPaths,
    KnowledgeView, ProcessId, ProcessSet,
};
use proptest::prelude::*;

/// Strategy: a random digraph on up to `n` vertices with edge probability
/// controlled by the density parameter.
fn arb_digraph(max_n: u64) -> impl Strategy<Value = DiGraph> {
    (2..=max_n, proptest::collection::vec(any::<u32>(), 1..200)).prop_map(|(n, seeds)| {
        let mut g = DiGraph::new();
        for v in 1..=n {
            g.add_vertex(ProcessId::new(v));
        }
        for (i, s) in seeds.iter().enumerate() {
            let a = 1 + (*s as u64 ^ i as u64) % n;
            let b = 1 + (*s as u64).rotate_left(7) % n;
            g.add_edge(ProcessId::new(a), ProcessId::new(b));
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SCCs partition the vertex set.
    #[test]
    fn sccs_partition_vertices(g in arb_digraph(24)) {
        let sccs = strongly_connected_components(&g);
        let mut seen = ProcessSet::new();
        let mut total = 0;
        for c in &sccs {
            prop_assert!(!c.is_empty());
            total += c.len();
            seen.extend(c.iter().copied());
        }
        prop_assert_eq!(total, g.vertex_count());
        prop_assert_eq!(seen, g.vertex_set());
    }

    /// Two vertices share a component iff they reach each other.
    #[test]
    fn scc_membership_is_mutual_reachability(g in arb_digraph(12)) {
        let cond = condensation(&g);
        for u in g.vertices() {
            let ru = g.reachable_from(u);
            for v in g.vertices() {
                let same = cond.component_of(u) == cond.component_of(v);
                let mutual = ru.contains(&v) && g.reachable_from(v).contains(&u);
                prop_assert_eq!(same, mutual, "{} vs {}", u, v);
            }
        }
    }

    /// The condensation is acyclic: no component reaches itself through
    /// another component.
    #[test]
    fn condensation_is_acyclic(g in arb_digraph(16)) {
        let cond = condensation(&g);
        let n = cond.components().len();
        // Kahn-style: repeatedly remove sinks; all must be removable.
        let mut out_deg: Vec<usize> = (0..n).map(|c| cond.component_edges(c).len()).collect();
        let mut removed = vec![false; n];
        for _ in 0..n {
            let Some(s) = (0..n).find(|&c| !removed[c] && out_deg[c] == 0) else {
                prop_assert!(false, "cycle in condensation");
                unreachable!()
            };
            removed[s] = true;
            for c in 0..n {
                if !removed[c] && cond.component_edges(c).contains(&s) {
                    out_deg[c] -= 1;
                }
            }
        }
    }

    /// Menger sanity: path count bounded by out/in degree; monotone under
    /// edge addition; direct edge gives at least one path.
    #[test]
    fn disjoint_path_bounds(g in arb_digraph(14)) {
        let dp = DisjointPaths::new(&g);
        for u in g.vertices().take(5) {
            for v in g.vertices().take(5) {
                if u == v { continue; }
                let c = dp.count(u, v);
                prop_assert!(c <= g.out_degree(u));
                prop_assert!(c <= g.in_degree(v));
                if g.has_edge(u, v) {
                    prop_assert!(c >= 1);
                }
            }
        }
    }

    /// Adding an edge never decreases any pair's disjoint-path count.
    #[test]
    fn path_count_monotone_under_edge_addition(g in arb_digraph(10), extra in any::<u32>()) {
        let n = g.vertex_count() as u64;
        let a = ProcessId::new(1 + extra as u64 % n);
        let b = ProcessId::new(1 + (extra as u64 / 7) % n);
        if a != b {
            let before = DiGraph::disjoint_path_count(&g, a, b);
            let mut g2 = g.clone();
            g2.add_edge(a, b);
            let after = g2.disjoint_path_count(a, b);
            prop_assert!(after >= before.max(1));
        }
    }

    /// Extracted paths realize the count and are internally disjoint.
    #[test]
    fn extracted_paths_valid(g in arb_digraph(10)) {
        let dp = DisjointPaths::new(&g);
        for u in g.vertices().take(3) {
            for v in g.vertices().take(3) {
                if u == v { continue; }
                let paths = dp.extract(u, v);
                prop_assert_eq!(paths.len(), dp.count(u, v));
                let mut internals = ProcessSet::new();
                for path in &paths {
                    prop_assert_eq!(path.first(), Some(&u));
                    prop_assert_eq!(path.last(), Some(&v));
                    for w in path.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]));
                    }
                    for &x in &path[1..path.len() - 1] {
                        prop_assert!(internals.insert(x), "reused internal {}", x);
                    }
                }
            }
        }
    }

    /// κ of a circulant equals its jump count (known closed form).
    #[test]
    fn circulant_connectivity_closed_form(n in 4u64..12, k in 1usize..4) {
        let k = k.min((n - 1) as usize);
        let g = DiGraph::circulant(&process_set(1..=n), k);
        prop_assert_eq!(g.strong_connectivity(), k);
    }

    /// The capped connectivity agrees with the exact one up to the cap.
    #[test]
    fn capped_connectivity_consistent(g in arb_digraph(10), cap in 0usize..5) {
        let exact = g.strong_connectivity();
        prop_assert_eq!(g.strong_connectivity_capped(cap), exact.min(cap));
    }

    /// An omniscient view's graph round-trips the original.
    #[test]
    fn omniscient_view_roundtrip(g in arb_digraph(12)) {
        let view = KnowledgeView::omniscient(&g);
        prop_assert_eq!(view.graph(), g.clone());
        prop_assert_eq!(view.received(), g.vertex_set());
    }
}
