//! The delta-gossip equivalence sweep: across the four family-sweep
//! topologies at three sizes, delta-gossip discovery must reach
//! **byte-identical** final [`KnowledgeView`]s and the full protocol must
//! reach **identical decisions** as the full-`S_PD` baseline — on both
//! runtimes — while delivering an order of magnitude less `SETPDS`
//! payload. This is the observational-equivalence bar the delta rework
//! (shared cert pool, requester-described deltas, sync-state suppression,
//! memoized verification) has to clear; the invariant argument lives in
//! the `cupft_discovery` crate docs.
//!
//! `scripts/verify.sh --quick` fronts this test as the delta-gossip gate.

use bft_cupft::core::{ProtocolMode, RuntimeKind, ScenarioGrid, SuiteReport};
use bft_cupft::detector::SystemSetup;
use bft_cupft::discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState, GossipMode};
use bft_cupft::graph::{DiGraph, GraphFamily, KnowledgeView, ProcessId};
use bft_cupft::net::sim::Simulation;
use bft_cupft::net::threaded::{Board, ThreadedConfig, ThreadedRuntime};
use bft_cupft::net::{DelayPolicy, Runtime, SimConfig};
use std::collections::BTreeMap;
use std::time::Duration;

const SIZES: [usize; 3] = [10, 14, 18];

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// Same topologies as `tests/family_sweep.rs`.
fn sweep_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::erdos_renyi(16, 1),
        GraphFamily::RingOfCliques {
            cliques: 3,
            clique_size: 4,
            bridges: 3,
            fault_threshold: 1,
        },
        GraphFamily::k_diamond(16, 1),
        GraphFamily::BridgedPartition {
            a_size: 8,
            sink_size: 3,
            bridge_width: 3,
            fault_threshold: 1,
        },
    ]
}

fn family_graphs() -> Vec<(String, DiGraph)> {
    let mut out = Vec::new();
    for family in sweep_families() {
        for size in SIZES {
            let sample = family.scaled(size).generate(11).unwrap();
            out.push((format!("{}@n{size}", family.name()), sample.system.graph));
        }
    }
    out
}

/// Runs discovery-only actors on the simulator to a generous horizon and
/// returns every process's final view plus the delivered SETPDS payload.
fn sim_views(
    graph: &DiGraph,
    mode: GossipMode,
    seed: u64,
) -> (BTreeMap<ProcessId, KnowledgeView>, u64) {
    let setup = SystemSetup::new(graph);
    let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
        seed,
        max_time: 10_000,
        policy: psync(),
    });
    for v in graph.vertices() {
        let state = DiscoveryState::from_setup(&setup, v)
            .unwrap()
            .with_gossip(mode);
        sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
    }
    sim.run_until(|s| s.now() > 6_000);
    let payload = sim.stats().label_payload("SETPDS");
    let views = sim
        .into_actors()
        .into_iter()
        .map(|(id, actor)| {
            let d = actor
                .as_any()
                .downcast_ref::<DiscoveryActor>()
                .expect("discovery actor");
            (id, d.state().view().clone())
        })
        .collect();
    (views, payload)
}

/// Byte-identical final views per process on the simulator, and ≥10x less
/// SETPDS payload, across 4 families × 3 sizes.
#[test]
fn delta_views_match_full_baseline_on_simulation() {
    let mut full_total = 0u64;
    let mut delta_total = 0u64;
    for (label, graph) in family_graphs() {
        let (full_views, full_payload) = sim_views(&graph, GossipMode::Full, 5);
        let (delta_views, delta_payload) = sim_views(&graph, GossipMode::Delta, 5);
        assert_eq!(
            full_views, delta_views,
            "{label}: delta-gossip views must be byte-identical to the baseline"
        );
        full_total += full_payload;
        delta_total += delta_payload;
    }
    assert!(
        delta_total * 10 <= full_total,
        "expected ≥10x sweep payload reduction, got full={full_total} delta={delta_total}"
    );
}

/// Threaded runtime: convergence is observed through a progress board
/// (the actors are unreachable mid-run). The knowledge fixpoint is a pure
/// function of the topology — pull-based dissemination closes over the
/// knowledge edges regardless of timing — so the deterministic simulator
/// supplies the expected per-process views and both threaded modes must
/// land on exactly them. One size per family keeps the wall cost sane.
#[test]
fn delta_views_match_full_baseline_on_threads() {
    for family in sweep_families() {
        let sample = family.scaled(12).generate(11).unwrap();
        let graph = &sample.system.graph;
        // Ground truth: the simulator's fixpoint (already proven equal
        // across modes by the sim sweep above). Not every process learns
        // the whole system — e.g. bridged-partition sink members never
        // hear of the outer block — so the expectation is per-process.
        let (expected, _) = sim_views(graph, GossipMode::Full, 5);
        let expected_counts: BTreeMap<ProcessId, usize> = expected
            .iter()
            .map(|(&id, view)| (id, view.received_count()))
            .collect();
        let run = |mode: GossipMode| -> BTreeMap<ProcessId, KnowledgeView> {
            let setup = SystemSetup::new(graph);
            let board: Board<usize> = Board::new();
            let mut rt: ThreadedRuntime<DiscoveryMsg> = ThreadedRuntime::new(ThreadedConfig {
                wall_timeout: Duration::from_secs(30),
                ..ThreadedConfig::default()
            });
            for v in graph.vertices() {
                let state = DiscoveryState::from_setup(&setup, v)
                    .unwrap()
                    .with_gossip(mode);
                rt.add_actor(Box::new(
                    DiscoveryActor::new(state, 10).with_board(board.clone()),
                ));
            }
            let report = rt.run_until_stopped(&mut || {
                let snapshot = board.snapshot();
                expected_counts
                    .iter()
                    .all(|(id, &want)| snapshot.get(id).is_some_and(|&have| have >= want))
            });
            assert!(
                report.stopped,
                "{} ({mode:?}): discovery must converge before the wall timeout",
                family.name()
            );
            graph
                .vertices()
                .map(|v| {
                    let actor: &DiscoveryActor = rt.actor_as(v).expect("actor returned");
                    (v, actor.state().view().clone())
                })
                .collect()
        };
        assert_eq!(
            run(GossipMode::Full),
            expected,
            "{}: threaded full-mode fixpoint must match the simulator's",
            family.name()
        );
        assert_eq!(
            run(GossipMode::Delta),
            expected,
            "{}: threaded delta-mode fixpoint must match the simulator's",
            family.name()
        );
    }
}

fn consensus_report(
    full_gossip: bool,
    kind: RuntimeKind,
    threaded_period: Option<u64>,
) -> SuiteReport {
    let mut grid = ScenarioGrid::new();
    for family in sweep_families() {
        grid = grid.family(&family, SIZES, 11, ProtocolMode::KnownThreshold(1));
    }
    let mut suite = grid.policy("psync", psync(), 400_000).seeds(0..1).build();
    for entry in suite.entries_mut() {
        entry.scenario = entry.scenario.clone().with_full_gossip(full_gossip);
        if let Some(period) = threaded_period {
            entry.scenario.discovery_period = period;
            entry.scenario.view_timeout_base = 4_000;
        }
    }
    suite.run(kind)
}

/// Identical `ScenarioGrid` decisions between modes on the simulator.
#[test]
fn delta_decisions_match_full_baseline_on_simulation() {
    let full = consensus_report(true, RuntimeKind::Sim, None);
    let delta = consensus_report(false, RuntimeKind::Sim, None);
    assert!(
        full.all_solved(),
        "baseline failures: {:?}",
        full.failures()
    );
    assert!(delta.all_solved(), "delta failures: {:?}", delta.failures());
    for (f, d) in full.verdicts.iter().zip(&delta.verdicts) {
        assert_eq!(f.label, d.label);
        assert_eq!(
            f.outcome.decisions, d.outcome.decisions,
            "{}: decisions must be identical across gossip modes",
            f.label
        );
        assert_eq!(f.outcome.detections, d.outcome.detections, "{}", f.label);
    }
}

/// Identical decided values between modes on the threaded runtime (whose
/// interleavings are nondeterministic, so values — determined by the
/// identified committee — are compared, not timings).
#[test]
fn delta_decisions_match_full_baseline_on_threads() {
    let full = consensus_report(true, RuntimeKind::Threaded, Some(200));
    let delta = consensus_report(false, RuntimeKind::Threaded, Some(200));
    assert!(
        full.all_solved(),
        "baseline failures: {:?}",
        full.failures()
    );
    assert!(delta.all_solved(), "delta failures: {:?}", delta.failures());
    for (f, d) in full.verdicts.iter().zip(&delta.verdicts) {
        assert_eq!(f.label, d.label);
        assert_eq!(
            f.check.decided_values, d.check.decided_values,
            "{}: decided values must agree across gossip modes",
            f.label
        );
    }
}
