//! The end-to-end catch the fault-injection engine exists for:
//!
//! 1. a composite strategy is injected on an *insufficiently connected*
//!    graph (Fig. 1a, which fails 2-OSR once process 4 withholds its
//!    edges) and the execution violates **Agreement**;
//! 2. the invariant checker flags the violation from the *recorded
//!    trace* (not from re-inspecting actors);
//! 3. the shrinker reduces the failing (scenario, seed, strategy) triple
//!    to a strictly smaller variant that still violates the same
//!    invariant — all deterministic under the fixed seed;
//! 4. injection of the same spec works on the threaded substrate too
//!    (trace/shrink stay sim-only, per the determinism contract).

use bft_cupft::adversary::{assignment_size, shrink, Assignment, Invariant};
use bft_cupft::core::{
    run_scenario_recorded, ByzantineStrategy, ProtocolMode, RuntimeKind, Scenario,
};
use bft_cupft::graph::{fig1a, process_set, ProcessId};

/// The initial composite strategy: a target-subset wrapper (empty target
/// set — nothing escapes) around a fake-PD leaf. Size 3; effectively
/// silences process 4, disconnecting {1,2,3} from {5,6,7,8}.
fn initial_spec() -> ByzantineStrategy {
    ByzantineStrategy::TargetSubset {
        targets: process_set([]),
        inner: Box::new(ByzantineStrategy::FakePd {
            claimed: process_set([1, 2, 3]),
        }),
    }
}

fn scenario_with(assignment: &Assignment) -> Scenario {
    let mut scenario = Scenario::new(fig1a().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_seed(7)
        .with_horizon(50_000);
    for (id, spec) in assignment {
        scenario = scenario.with_byzantine(id.raw(), spec.clone());
    }
    scenario
}

fn violates_agreement(assignment: &Assignment) -> bool {
    let scenario = scenario_with(assignment);
    let (_, trace) = run_scenario_recorded(&scenario);
    scenario
        .trace_checker()
        .check(&trace)
        .iter()
        .any(|v| v.invariant == Invariant::Agreement)
}

#[test]
fn inject_flag_shrink_end_to_end() {
    let initial: Assignment = vec![(ProcessId::new(4), initial_spec())];

    // 1+2: the recorded trace exhibits the Agreement violation and the
    // checker flags it.
    let scenario = scenario_with(&initial);
    let (outcome, trace) = run_scenario_recorded(&scenario);
    assert!(!outcome.check().agreement, "outcome-level cross-check");
    let violations = scenario.trace_checker().check(&trace);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == Invariant::Agreement),
        "checker must flag Agreement from the trace: {violations:?}"
    );
    // both components decided, so no (bounded) termination violation
    assert!(violations
        .iter()
        .all(|v| v.invariant == Invariant::Agreement));

    // 3a: the unconstrained shrink discovers the *graph* is the culprit —
    // Fig. 1a violates agreement even with every process correct (the
    // requirement failure is structural, exactly the paper's point), so
    // the minimal failing variant is the empty fault assignment.
    let outcome = shrink(initial.clone(), &mut violates_agreement);
    assert!(outcome.shrank(), "a strictly smaller variant exists");
    assert!(assignment_size(&outcome.minimal) < assignment_size(&initial));
    assert!(violates_agreement(&outcome.minimal));
    assert_eq!(outcome.minimal, vec![], "the graph alone already fails");

    // 3b: constrained to "process 4 stays faulty" (the experimenter's
    // question: which part of the composite strategy matters?), the
    // shrinker prunes both combinator layers down to bare Silent.
    let mut faulty_and_violating = |a: &Assignment| !a.is_empty() && violates_agreement(a);
    let constrained = shrink(initial.clone(), &mut faulty_and_violating);
    assert_eq!(
        constrained.minimal,
        vec![(ProcessId::new(4), ByzantineStrategy::Silent)]
    );
    assert!(assignment_size(&constrained.minimal) < assignment_size(&initial));

    // determinism: the whole record→check→shrink loop replays identically
    let replay = shrink(initial, &mut violates_agreement);
    assert_eq!(replay, outcome);
    let (_, trace_b) = run_scenario_recorded(&scenario);
    assert_eq!(trace.fingerprint(), trace_b.fingerprint());
    assert_eq!(trace, trace_b);
}

#[test]
fn the_violation_also_reproduces_threaded() {
    // Injection (not tracing) on the OS-thread substrate: the same spec
    // breaks agreement there too — the result is not a simulator artifact.
    let scenario = scenario_with(&vec![(ProcessId::new(4), initial_spec())]);
    let outcome = scenario.run_on(RuntimeKind::Threaded);
    let check = outcome.check();
    assert!(!check.agreement, "{:?}", outcome.decisions);
    // each component decides *some* proposed value: validity holds
    assert!(check.validity);
}
