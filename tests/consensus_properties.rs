//! Cross-crate integration: the four consensus properties over the paper's
//! witness graphs and generated graph families, across Byzantine
//! strategies, fault placements, and seeds.

use bft_cupft::core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::graph::{fig1b, fig4a, fig4b, process_set, GdiParams, Generator};

fn strategies() -> Vec<(&'static str, ByzantineStrategy)> {
    vec![
        ("silent", ByzantineStrategy::Silent),
        (
            "fake_pd",
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
        ),
        (
            "equivocate_pd",
            ByzantineStrategy::EquivocatePd {
                even: process_set([1, 2]),
                odd: process_set([2, 3]),
            },
        ),
    ]
}

#[test]
fn bft_cup_fig1b_all_strategies_all_seeds() {
    for (name, strategy) in strategies() {
        for seed in 0..5 {
            let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
                .with_byzantine(4, strategy.clone())
                .with_seed(seed);
            let outcome = run_scenario(&scenario);
            let check = outcome.check();
            assert!(
                check.consensus_solved(),
                "fig1b/{name}/seed{seed}: {check:?}"
            );
        }
    }
}

#[test]
fn bft_cupft_fig4a_seed_sweep() {
    for seed in 0..8 {
        let scenario =
            Scenario::new(fig4a().graph().clone(), ProtocolMode::UnknownThreshold).with_seed(seed);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "fig4a/seed{seed}: {check:?}");
        assert_eq!(
            outcome.distinct_detections(),
            [process_set([1, 2, 3, 4, 5])].into_iter().collect(),
            "fig4a/seed{seed}: every correct process must identify the core"
        );
    }
}

#[test]
fn bft_cupft_fig4b_byzantine_sweep() {
    for (name, strategy) in strategies() {
        for seed in 0..3 {
            let scenario = Scenario::new(fig4b().graph().clone(), ProtocolMode::UnknownThreshold)
                .with_byzantine(4, strategy.clone())
                .with_seed(seed);
            let outcome = run_scenario(&scenario);
            let check = outcome.check();
            assert!(
                check.consensus_solved(),
                "fig4b/{name}/seed{seed}: {check:?}"
            );
        }
    }
}

#[test]
fn bft_cupft_fig4b_equivocating_core_leader() {
    // Process 5 is the lowest-ID core member, hence view-0 leader.
    for seed in 0..3 {
        let scenario = Scenario::new(fig4b().graph().clone(), ProtocolMode::UnknownThreshold)
            .with_byzantine(
                5,
                ByzantineStrategy::EquivocateValue {
                    committee: process_set([5, 6, 7, 8, 9]),
                    value_a: bft_cupft::committee::Value::from_static(b"evil-A"),
                    value_b: bft_cupft::committee::Value::from_static(b"evil-B"),
                },
            )
            .with_seed(seed);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "seed{seed}: {check:?}");
    }
}

#[test]
fn bft_cup_generated_graphs_with_silent_byzantine() {
    for seed in 0..6 {
        let sys = Generator::from_seed(seed)
            .generate(&GdiParams::new(1))
            .expect("generation succeeds");
        let byz = *sys.byzantine.iter().next().expect("one Byzantine");
        let scenario = Scenario::new(sys.graph.clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(byz.raw(), ByzantineStrategy::Silent)
            .with_seed(seed);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "gen/seed{seed}: {check:?}");
    }
}

#[test]
fn bft_cup_generated_f2() {
    let mut params = GdiParams::new(2);
    params.non_sink_size = 4;
    for seed in 0..3 {
        let sys = Generator::from_seed(100 + seed)
            .generate(&params)
            .expect("generation succeeds");
        let mut scenario =
            Scenario::new(sys.graph.clone(), ProtocolMode::KnownThreshold(2)).with_seed(seed);
        for b in &sys.byzantine {
            scenario = scenario.with_byzantine(b.raw(), ByzantineStrategy::Silent);
        }
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "gen-f2/seed{seed}: {check:?}");
    }
}

#[test]
fn bft_cupft_generated_extended_graphs() {
    let mut params = GdiParams::new(1);
    params.extended = true;
    params.byzantine_count = 0;
    params.non_sink_size = 5;
    for seed in 0..5 {
        let sys = Generator::from_seed(seed)
            .generate(&params)
            .expect("generation succeeds");
        let scenario =
            Scenario::new(sys.graph.clone(), ProtocolMode::UnknownThreshold).with_seed(seed);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "gen-ext/seed{seed}: {check:?}");
        assert_eq!(
            outcome.distinct_detections(),
            [sys.sink.clone()].into_iter().collect(),
            "gen-ext/seed{seed}: core must match ground truth"
        );
    }
}

#[test]
fn validity_decided_value_always_proposed() {
    // Under every passing scenario above validity is asserted; this test
    // additionally pins the *specific* value: the view-0 leader of the
    // fig1b sink is process 1, so its proposal must win the happy path.
    let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_value(1, b"the-genesis");
    let outcome = run_scenario(&scenario);
    let check = outcome.check();
    assert!(check.consensus_solved());
    assert_eq!(
        check.decided_values.iter().next().map(Vec::as_slice),
        Some(&b"the-genesis"[..])
    );
}

#[test]
fn integrity_no_node_decides_twice() {
    // decided_times is populated exactly once per node by construction;
    // run a scenario and confirm every decider has exactly one time and
    // one value (the API makes double-decision unrepresentable, this
    // guards against regressions that would re-set it).
    let scenario = Scenario::new(fig4a().graph().clone(), ProtocolMode::UnknownThreshold);
    let outcome = run_scenario(&scenario);
    for (id, decision) in &outcome.decisions {
        assert!(decision.is_some(), "{id} decided");
        assert!(outcome.decided_times[id].is_some());
    }
}

#[test]
fn lying_decided_val_cannot_poison_learners() {
    // Byzantine sink member answers every GETDECIDEDVAL with a fabricated
    // value; learners require ⌈(|S|+1)/2⌉ ≥ f+1 matching answers, so one
    // liar can neither convince them nor block them.
    for seed in 0..4 {
        let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(
                4,
                ByzantineStrategy::LieDecidedVal {
                    value: bft_cupft::committee::Value::from_static(b"poison"),
                },
            )
            .with_seed(seed);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "seed{seed}: {check:?}");
        assert!(
            !check.decided_values.contains(b"poison".as_slice()),
            "seed{seed}: the fabricated value must never be decided"
        );
    }
}

#[test]
fn lying_decided_val_on_cupft_core_member() {
    for seed in 0..3 {
        let scenario = Scenario::new(fig4b().graph().clone(), ProtocolMode::UnknownThreshold)
            .with_byzantine(
                6,
                ByzantineStrategy::LieDecidedVal {
                    value: bft_cupft::committee::Value::from_static(b"poison"),
                },
            )
            .with_seed(seed);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "seed{seed}: {check:?}");
        assert!(!check.decided_values.contains(b"poison".as_slice()));
    }
}

#[test]
fn combined_byzantine_attack_f2_extended() {
    // Two Byzantine processes with DIFFERENT strategies at once, on a
    // generated extended graph with f = 2: one lies about its PD, the
    // other poisons the learning path. The core (2f+1 = 5 complete) must
    // absorb both.
    let mut params = GdiParams::new(2);
    params.extended = true;
    params.sink_size = 5;
    params.non_sink_size = 4;
    params.byzantine_count = 2;
    for seed in 0..3 {
        let sys = Generator::from_seed(300 + seed)
            .generate(&params)
            .expect("generation succeeds");
        let byz: Vec<_> = sys.byzantine.iter().copied().collect();
        assert_eq!(byz.len(), 2);
        let scenario = Scenario::new(sys.graph.clone(), ProtocolMode::UnknownThreshold)
            .with_byzantine(
                byz[0].raw(),
                ByzantineStrategy::FakePd {
                    claimed: sys.sink.clone(),
                },
            )
            .with_byzantine(
                byz[1].raw(),
                ByzantineStrategy::LieDecidedVal {
                    value: bft_cupft::committee::Value::from_static(b"poison"),
                },
            )
            .with_seed(seed)
            .with_horizon(400_000);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        assert!(check.consensus_solved(), "seed{seed}: {check:?}");
        assert!(!check.decided_values.contains(b"poison".as_slice()));
    }
}
