//! Property tests for the delta-gossip dissemination layer: per-peer ack
//! (sync-state) bookkeeping must never suppress a certificate a peer has
//! not received — phrased operationally, delta-mode discovery must reach
//! the same final `KnowledgeView`s as the full-`S_PD` baseline under the
//! same seed and the same network adversary, across random topologies,
//! seeds, and tamper schedules (message reordering, and dropping the
//! traffic of a periphery "silenced" process).

use bft_cupft::adversary::TamperSpec;
use bft_cupft::detector::SystemSetup;
use bft_cupft::discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState, GossipMode};
use bft_cupft::graph::{process_set, DiGraph, GraphFamily, KnowledgeView, ProcessId};
use bft_cupft::net::sim::Simulation;
use bft_cupft::net::{DelayPolicy, SimConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// A family sample picked by index, at a small size (the properties are
/// about protocol logic, not scale).
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (0u8..4, 10usize..20, 0u64..50).prop_map(|(which, size, seed)| {
        let family = match which {
            0 => GraphFamily::erdos_renyi(size, 1),
            1 => GraphFamily::ring_of_cliques(size, 1),
            2 => GraphFamily::k_diamond(size, 1),
            _ => GraphFamily::bridged_partition(size.max(12), 1),
        };
        family
            .scaled(size)
            .generate(seed)
            .expect("valid family parameters")
            .system
            .graph
    })
}

/// Reordering plus (sometimes) a silenced highest-ID sender — the
/// `DropFrom` discipline of the model: the dropped process is effectively
/// Byzantine-silent, identically so in both gossip modes.
fn arb_tamper() -> impl Strategy<Value = Option<TamperSpec>> {
    (0u8..3, 1u64..60, 0u64..1000).prop_map(|(which, window, seed)| match which {
        0 => None,
        1 => Some(TamperSpec::ReorderWindow { window, seed }),
        _ => Some(TamperSpec::Chain(vec![TamperSpec::ReorderWindow {
            window,
            seed,
        }])),
    })
}

/// Runs discovery-only actors to a generous horizon under `tamper`,
/// returning each process's final view.
fn run_discovery(
    graph: &DiGraph,
    mode: GossipMode,
    seed: u64,
    tamper: &Option<TamperSpec>,
    silenced: Option<ProcessId>,
) -> BTreeMap<ProcessId, KnowledgeView> {
    let setup = SystemSetup::new(graph);
    let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
        seed,
        max_time: 20_000,
        policy: psync(),
    });
    let mut parts: Vec<TamperSpec> = tamper.iter().cloned().collect();
    if let Some(victim) = silenced {
        parts.push(TamperSpec::DropFrom {
            senders: process_set([victim.raw()]),
        });
    }
    if !parts.is_empty() {
        sim.set_tamper(TamperSpec::Chain(parts).build());
    }
    for v in graph.vertices() {
        let state = DiscoveryState::from_setup(&setup, v)
            .unwrap()
            .with_gossip(mode);
        sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
    }
    sim.run_until(|s| s.now() > 12_000);
    sim.into_actors()
        .into_iter()
        .map(|(id, actor)| {
            let d = actor
                .as_any()
                .downcast_ref::<DiscoveryActor>()
                .expect("discovery actor");
            (id, d.state().view().clone())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ack state never suppresses an unseen certificate: at the horizon,
    /// delta views equal full-baseline views process-for-process, under
    /// the same reordering schedule.
    #[test]
    fn delta_never_suppresses_under_reordering(
        graph in arb_graph(),
        seed in 0u64..500,
        tamper in arb_tamper(),
    ) {
        let full = run_discovery(&graph, GossipMode::Full, seed, &tamper, None);
        let delta = run_discovery(&graph, GossipMode::Delta, seed, &tamper, None);
        prop_assert_eq!(&full, &delta);
        // Sanity: the runs actually disseminated something — every view
        // holds at least its own PD plus one more on these families.
        prop_assert!(delta.values().all(|v| v.received_count() >= 2));
    }

    /// Same property with a silenced (DropFrom) periphery process: both
    /// modes see the identical weaker network, so both converge to the
    /// same (reduced) views — a certificate that never crossed the wire
    /// in the baseline must also not be "remembered away" by delta
    /// bookkeeping, and vice versa.
    #[test]
    fn delta_never_suppresses_under_drops(
        graph in arb_graph(),
        seed in 0u64..500,
        tamper in arb_tamper(),
    ) {
        // Highest ID is always a periphery/outer vertex under the
        // families' sink-first ID layout; silencing it stays in-model.
        let victim = graph.vertices().max().expect("non-empty graph");
        let full = run_discovery(&graph, GossipMode::Full, seed, &tamper, Some(victim));
        let delta = run_discovery(&graph, GossipMode::Delta, seed, &tamper, Some(victim));
        prop_assert_eq!(&full, &delta);
        // The victim's own certificate must be absent everywhere else:
        // its sends (the only source) were dropped.
        for (&id, view) in &delta {
            if id != victim {
                prop_assert!(!view.has_pd_of(victim));
            }
        }
    }
}
