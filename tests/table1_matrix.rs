//! Table I as an enforced test matrix: every cell of the paper's
//! (im)possibility table must hold on every `cargo test` run.
//! (The printable version with timings is `cargo run -p cupft-bench --bin
//! table1`.)
//!
//! The nine cells are expressed as one [`ScenarioGrid`] per column (each
//! column's witness graph carries its own Byzantine process) merged into a
//! single [`ScenarioSuite`] and executed in parallel on the deterministic
//! simulator.

use bft_cupft::core::{
    FaultCase, ProtocolMode, RuntimeKind, ScenarioGrid, ScenarioSuite, SuiteReport,
};
use bft_cupft::graph::{fig1b, fig4a, process_set, DiGraph};
use bft_cupft::net::DelayPolicy;

fn sync() -> DelayPolicy {
    DelayPolicy::Synchronous { delta: 10 }
}

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 300,
        delta: 10,
        pre_gst_max: 200,
    }
}

fn adversarial() -> DelayPolicy {
    DelayPolicy::Asynchronous {
        delta: 10,
        unbounded_max: 1_000_000,
    }
}

fn known_membership() -> DiGraph {
    DiGraph::complete(&process_set(1..=4))
}

/// The full nine-cell matrix as one parallel suite run.
fn run_matrix() -> SuiteReport {
    let column = |label: &str, graph: DiGraph, mode: ProtocolMode, byz: u64| {
        ScenarioGrid::new()
            .graph(label, graph, mode)
            .fault(FaultCase::silent(byz))
            .policy("sync", sync(), 100_000)
            .policy("psync", psync(), 200_000)
            .policy("async", adversarial(), 50_000)
            .build()
    };
    let mut suite: ScenarioSuite = column(
        "known",
        known_membership(),
        ProtocolMode::KnownThreshold(1),
        4,
    );
    suite.extend(column(
        "bft-cup",
        fig1b().graph().clone(),
        ProtocolMode::KnownThreshold(1),
        4,
    ));
    suite.extend(column(
        "bft-cupft",
        fig4a().graph().clone(),
        ProtocolMode::UnknownThreshold,
        9,
    ));
    assert_eq!(suite.len(), 9);
    suite.run(RuntimeKind::Sim)
}

#[test]
fn table1_matrix_holds() {
    let report = run_matrix();
    assert_eq!(report.verdicts.len(), 9);
    for verdict in &report.verdicts {
        if verdict.label.contains("/async/") {
            assert!(
                !verdict.check.termination,
                "{} must not decide: {:?}",
                verdict.label, verdict.check
            );
            assert!(
                verdict.check.agreement,
                "{} must stay safe: {:?}",
                verdict.label, verdict.check
            );
        } else {
            assert!(
                verdict.solved(),
                "{} must solve consensus: {:?}",
                verdict.label,
                verdict.check
            );
        }
    }
    assert_eq!(report.solved_count(), 6, "six possibility cells");
}
