//! Table I as an enforced test matrix: every cell of the paper's
//! (im)possibility table must hold on every `cargo test` run.
//! (The printable version with timings is `cargo run -p cupft-bench --bin
//! table1`.)

use bft_cupft::core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::graph::{fig1b, fig4a, process_set, DiGraph};
use bft_cupft::net::DelayPolicy;

fn cell(
    graph: DiGraph,
    mode: ProtocolMode,
    byzantine: u64,
    policy: DelayPolicy,
    horizon: u64,
) -> bft_cupft::core::ConsensusCheck {
    let scenario = Scenario::new(graph, mode)
        .with_byzantine(byzantine, ByzantineStrategy::Silent)
        .with_policy(policy)
        .with_horizon(horizon);
    run_scenario(&scenario).check()
}

fn sync() -> DelayPolicy {
    DelayPolicy::Synchronous { delta: 10 }
}

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 300,
        delta: 10,
        pre_gst_max: 200,
    }
}

fn adversarial() -> DelayPolicy {
    DelayPolicy::Asynchronous {
        delta: 10,
        unbounded_max: 1_000_000,
    }
}

fn known_membership() -> DiGraph {
    DiGraph::complete(&process_set(1..=4))
}

#[test]
fn row_synchronous_all_possible() {
    for (graph, mode, byz) in [
        (known_membership(), ProtocolMode::KnownThreshold(1), 4),
        (fig1b().graph().clone(), ProtocolMode::KnownThreshold(1), 4),
        (fig4a().graph().clone(), ProtocolMode::UnknownThreshold, 9),
    ] {
        let check = cell(graph, mode, byz, sync(), 100_000);
        assert!(check.consensus_solved(), "{mode:?}: {check:?}");
    }
}

#[test]
fn row_partially_synchronous_all_possible() {
    for (graph, mode, byz) in [
        (known_membership(), ProtocolMode::KnownThreshold(1), 4),
        (fig1b().graph().clone(), ProtocolMode::KnownThreshold(1), 4),
        (fig4a().graph().clone(), ProtocolMode::UnknownThreshold, 9),
    ] {
        let check = cell(graph, mode, byz, psync(), 200_000);
        assert!(check.consensus_solved(), "{mode:?}: {check:?}");
    }
}

#[test]
fn row_asynchronous_stalls_safely() {
    for (graph, mode, byz) in [
        (known_membership(), ProtocolMode::KnownThreshold(1), 4),
        (fig1b().graph().clone(), ProtocolMode::KnownThreshold(1), 4),
        (fig4a().graph().clone(), ProtocolMode::UnknownThreshold, 9),
    ] {
        let check = cell(graph, mode, byz, adversarial(), 50_000);
        assert!(!check.termination, "{mode:?} must not decide: {check:?}");
        assert!(check.agreement, "{mode:?} must stay safe: {check:?}");
    }
}
