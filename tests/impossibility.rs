//! Cross-crate integration: the paper's impossibility results, reproduced
//! as concrete failing executions.

use bft_cupft::core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::graph::{fig1a, fig2a, fig2b, fig2c, fig3a, process_set};
use bft_cupft::net::DelayPolicy;

const NAIVE: ProtocolMode = ProtocolMode::NaiveGuess { settle_ticks: 3 };

/// Fig. 1a: the graph violates Theorem 1's (necessary) conditions; with
/// the bridge silent, the components decide independently.
#[test]
fn fig1a_components_split() {
    let scenario = Scenario::new(fig1a().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_horizon(50_000);
    let outcome = run_scenario(&scenario);
    let check = outcome.check();
    assert!(!check.consensus_solved());
    assert!(!check.agreement, "both components decide: {check:?}");
}

/// Theorem 7: systems A and B decide their own values; the merged system
/// AB with slow cross-links decides both — Agreement violated.
#[test]
fn theorem7_indistinguishability_violates_agreement() {
    // A alone decides v.
    let a = Scenario::new(fig2a().graph().clone(), NAIVE)
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_value(1, b"v")
        .with_value(2, b"v")
        .with_value(3, b"v");
    let oa = run_scenario(&a);
    assert!(oa.check().consensus_solved(), "{:?}", oa.check());
    assert_eq!(
        oa.check().decided_values.iter().next().map(Vec::as_slice),
        Some(&b"v"[..])
    );

    // B alone decides u.
    let b = Scenario::new(fig2b().graph().clone(), NAIVE)
        .with_byzantine(5, ByzantineStrategy::Silent)
        .with_value(6, b"u")
        .with_value(7, b"u")
        .with_value(8, b"u");
    let ob = run_scenario(&b);
    assert!(ob.check().consensus_solved());

    // AB with delayed cross-links decides both.
    let cross = (oa
        .last_decision_time()
        .unwrap()
        .max(ob.last_decision_time().unwrap())
        + 1)
        * 10;
    let mut ab = Scenario::new(fig2c().graph().clone(), NAIVE)
        .with_policy(DelayPolicy::Partitioned {
            delta: 10,
            groups: vec![process_set([1, 2, 3, 4]), process_set([5, 6, 7, 8])],
            cross_delay: cross,
        })
        .with_horizon(cross * 4);
    for p in 1..=4u64 {
        ab = ab.with_value(p, b"v");
    }
    for p in 5..=8u64 {
        ab = ab.with_value(p, b"u");
    }
    let oab = run_scenario(&ab);
    let check = oab.check();
    assert!(!check.agreement, "Agreement must be violated: {check:?}");
    assert_eq!(check.decided_values.len(), 2);
    // The two camps adopted exactly the two sinks of the construction.
    let detections = oab.distinct_detections();
    assert!(detections.contains(&process_set([1, 2, 3, 4])));
    assert!(detections.contains(&process_set([5, 6, 7, 8])));
}

/// Fig. 3a: the false sink {1,…,7} (with 1 acting correct and {5,7,8}
/// slow) decides independently of the true sink {5,7,8}.
#[test]
fn fig3a_false_sink_splits_decision() {
    let mut scenario = Scenario::new(fig3a().graph().clone(), NAIVE)
        .with_policy(DelayPolicy::Partitioned {
            delta: 10,
            groups: vec![process_set([1, 2, 3, 4, 6]), process_set([5, 7, 8])],
            cross_delay: 50_000,
        })
        .with_horizon(200_000);
    for p in [1u64, 2, 3, 4, 6] {
        scenario = scenario.with_value(p, b"x");
    }
    for p in [5u64, 7, 8] {
        scenario = scenario.with_value(p, b"y");
    }
    let outcome = run_scenario(&scenario);
    let check = outcome.check();
    assert!(!check.agreement, "{check:?}");
}

/// Theorem 7 binds EVERY f-unknown protocol — including the Core
/// algorithm itself. On Fig. 2c (which fails the extended requirements:
/// two sinks of equal connectivity) the Core algorithm splits exactly like
/// the naive guesser. The repair is the *graph family* (Definition 2), not
/// cleverness in the algorithm; on valid extended graphs (Figs. 4a/4b and
/// the generated family) the consensus_properties tests show no split.
#[test]
fn core_algorithm_also_splits_on_fig2c_as_theorem7_demands() {
    let cross = 20_000;
    let mut scenario = Scenario::new(fig2c().graph().clone(), ProtocolMode::UnknownThreshold)
        .with_policy(DelayPolicy::Partitioned {
            delta: 10,
            groups: vec![process_set([1, 2, 3, 4]), process_set([5, 6, 7, 8])],
            cross_delay: cross,
        })
        .with_horizon(cross * 3);
    for p in 1..=4u64 {
        scenario = scenario.with_value(p, b"v");
    }
    for p in 5..=8u64 {
        scenario = scenario.with_value(p, b"u");
    }
    let outcome = run_scenario(&scenario);
    let check = outcome.check();
    assert!(
        !check.agreement,
        "Theorem 7 applies to the Core algorithm too: {check:?}"
    );
    assert_eq!(check.decided_values.len(), 2);
}

/// The full strength of Theorem 7's argument: the executions of processes
/// {1,2,3} in system A (process 4 crashed from the start) and in system AB
/// (everyone correct, non-{1,2,3} messages delayed) are *identical event
/// for event* up to the decision point — literally indistinguishable, not
/// merely same-outcome. Uses the crash-fault model of the proof.
#[test]
fn theorem7_traces_are_event_identical() {
    use bft_cupft::core::run_scenario_traced;

    let inner = process_set([1, 2, 3]);
    // System A: 4 crashes at time 0 (the proof's weaker fault model).
    // The delay schedule must match AB's within {1,2,3}: use the same
    // Partitioned policy, under which intra-{1,2,3} delay is the constant
    // delta in both systems.
    let mut a = Scenario::new(fig2a().graph().clone(), NAIVE)
        .with_crash(4, 0)
        .with_policy(DelayPolicy::Partitioned {
            delta: 10,
            groups: vec![inner.clone()],
            cross_delay: 50_000,
        })
        .with_horizon(40_000);
    for p in 1..=3u64 {
        a = a.with_value(p, b"v");
    }
    let (oa, trace_a) = run_scenario_traced(&a);
    assert!(oa.check().consensus_solved(), "{:?}", oa.check());
    let decision_a = oa.last_decision_time().unwrap();

    // System AB: all 8 correct; only {1,2,3} and {5,6,7,8} are fast
    // groups; 4's messages (and all cross traffic) are delayed beyond the
    // decision points.
    let mut ab = Scenario::new(fig2c().graph().clone(), NAIVE)
        .with_policy(DelayPolicy::Partitioned {
            delta: 10,
            groups: vec![inner.clone(), process_set([5, 6, 7, 8])],
            cross_delay: 50_000,
        })
        .with_horizon(40_000);
    for p in 1..=4u64 {
        ab = ab.with_value(p, b"v");
    }
    for p in 5..=8u64 {
        ab = ab.with_value(p, b"u");
    }
    let (oab, trace_ab) = run_scenario_traced(&ab);
    // Agreement is violated in AB…
    assert!(!oab.check().agreement, "{:?}", oab.check());

    // …and the executions of {1,2,3} are event-identical up to A's
    // decision time: same deliveries, same senders, same times, same
    // message kinds.
    let filter = |trace: &[bft_cupft::net::TraceEntry]| -> Vec<(u64, u64, u64, &'static str)> {
        trace
            .iter()
            .filter(|e| e.time <= decision_a && inner.contains(&e.to))
            .map(|e| (e.time, e.from.raw(), e.to.raw(), e.label))
            .collect()
    };
    let a_events = filter(&trace_a);
    let ab_events = filter(&trace_ab);
    assert!(!a_events.is_empty());
    assert_eq!(
        a_events, ab_events,
        "{{1,2,3}} must be unable to distinguish A from AB"
    );
    // and the decisions of {1,2,3} match across the two systems
    for p_raw in 1..=3u64 {
        let p = bft_cupft::graph::ProcessId::new(p_raw);
        assert_eq!(oa.decisions[&p], oab.decisions[&p], "process {p_raw}");
    }
}
