//! The fault-injection engine's acceptance sweep: a 64-cell grid on the
//! new strategy axis (graph × strategy × policy × seed), plus injection
//! parity on the threaded substrate and a within-model network tamper.
//!
//! Both swept graphs satisfy their knowledge-connectivity requirements,
//! so every cell must solve consensus no matter how the single Byzantine
//! process (4, outside both cores) composes its strategy.

use bft_cupft::core::{
    ByzantineStrategy, ProtocolMode, RuntimeKind, Scenario, ScenarioGrid, ScenarioSuite,
    StrategyCase, TamperSpec,
};
use bft_cupft::graph::{fig1b, fig4b, process_set, ProcessId};
use bft_cupft::net::DelayPolicy;

/// The four swept strategies: one plain leaf, one protocol attack, and
/// two combinator compositions.
fn strategies() -> Vec<StrategyCase> {
    vec![
        StrategyCase::single(4, ByzantineStrategy::Silent),
        StrategyCase::single(
            4,
            ByzantineStrategy::ForgeUnsignedPd {
                victim: ProcessId::new(1),
                claimed: process_set([4]),
            },
        ),
        StrategyCase::single(
            4,
            ByzantineStrategy::DelayRelease {
                until: 300,
                inner: Box::new(ByzantineStrategy::FakePd {
                    claimed: process_set([1, 2, 3]),
                }),
            },
        ),
        StrategyCase::single(
            4,
            ByzantineStrategy::FlipAfter {
                at: 400,
                before: Box::new(ByzantineStrategy::FakePd {
                    claimed: process_set([1, 2, 3]),
                }),
                after: Box::new(ByzantineStrategy::Silent),
            },
        ),
    ]
}

fn policies(grid: ScenarioGrid) -> ScenarioGrid {
    grid.policy("sync", DelayPolicy::Synchronous { delta: 10 }, 200_000)
        .policy(
            "psync",
            DelayPolicy::PartialSynchrony {
                gst: 200,
                delta: 10,
                pre_gst_max: 120,
            },
            200_000,
        )
        .seeds(0..4)
}

/// graph {fig1b, fig4b} × strategy {4} × policy {sync, psync} × seed
/// {0..4} = 64 scenarios.
fn sweep() -> ScenarioSuite {
    let with_strategies = |mut grid: ScenarioGrid| {
        for case in strategies() {
            grid = grid.strategy(case);
        }
        policies(grid)
    };
    let mut suite = with_strategies(ScenarioGrid::new().graph(
        "fig1b",
        fig1b().graph().clone(),
        ProtocolMode::KnownThreshold(1),
    ))
    .build();
    suite.extend(
        with_strategies(ScenarioGrid::new().graph(
            "fig4b",
            fig4b().graph().clone(),
            ProtocolMode::UnknownThreshold,
        ))
        .build(),
    );
    suite
}

#[test]
fn sixty_four_cell_strategy_grid_solves_on_sim() {
    let suite = sweep();
    assert_eq!(suite.len(), 64);
    let report = suite.run(RuntimeKind::Sim);
    assert!(report.all_solved(), "failed cells: {:?}", report.failures());
    // the strategy segment shows up in labels
    assert!(report.verdicts[0].label.contains("/silent@4/"));
    assert!(report
        .verdicts
        .iter()
        .any(|v| v.label.contains("delay@300(fakepd{1,2,3})@4")));
}

#[test]
fn strategy_grid_is_deterministic_across_worker_counts() {
    let suite = sweep();
    let parallel = suite.clone().run(RuntimeKind::Sim);
    let sequential = suite.with_workers(1).run(RuntimeKind::Sim);
    for (p, s) in parallel.verdicts.iter().zip(&sequential.verdicts) {
        assert_eq!(p.label, s.label);
        assert_eq!(p.check, s.check);
        assert_eq!(p.outcome.decisions, s.outcome.decisions);
        assert_eq!(p.outcome.end_time, s.outcome.end_time);
    }
}

/// Fault *injection* must work on both substrates: the same composite
/// spec compiled once runs threaded, and the sufficient graph still
/// solves consensus there.
#[test]
fn composite_strategy_injection_runs_threaded() {
    let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(
            4,
            ByzantineStrategy::DelayRelease {
                until: 50, // milliseconds on the threaded substrate
                inner: Box::new(ByzantineStrategy::FakePd {
                    claimed: process_set([1, 2, 3]),
                }),
            },
        );
    let outcome = scenario.run_on(RuntimeKind::Threaded);
    assert!(
        outcome.check().consensus_solved(),
        "{:?}",
        outcome.decisions
    );
}

/// A within-model tamper (dropping only the Byzantine process's output)
/// runs through the same hook on both substrates.
#[test]
fn tamper_spec_runs_on_both_substrates() {
    let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(
            4,
            ByzantineStrategy::FakePd {
                claimed: process_set([1, 2, 3]),
            },
        )
        .with_tamper(TamperSpec::DropFrom {
            senders: process_set([4]),
        });
    for kind in [RuntimeKind::Sim, RuntimeKind::Threaded] {
        let outcome = scenario.run_on(kind);
        assert!(
            outcome.check().consensus_solved(),
            "{kind:?}: {:?}",
            outcome.decisions
        );
        assert!(
            outcome.stats.messages_dropped > 0,
            "{kind:?} honored the tamper"
        );
    }
}
