//! Cross-crate integration: executable checks of the paper's theorems on
//! witness graphs and generated families.

use bft_cupft::core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::detector::SystemSetup;
use bft_cupft::discovery::{DiscoveryActor, DiscoveryState};
use bft_cupft::graph::{
    exact_best_sink, fig1b, fig4a, fig4b, is_extended_k_osr, osr_report, process_set,
    CandidateSearch, GdiParams, Generator, KnowledgeView,
};
use bft_cupft::net::sim::Simulation;
use bft_cupft::net::{DelayPolicy, SimConfig};

/// Theorem 1 (necessity side, spot check): the witness graphs satisfying
/// BFT-CUP have (f+1)-OSR safe subgraphs with ≥ 2f+1 sinks.
#[test]
fn theorem1_requirements_on_witnesses() {
    let fig = fig1b();
    let report = osr_report(&fig.safe_subgraph(), 2);
    assert!(report.is_k_osr());
    assert!(report.sink_members().unwrap().len() >= 3);
}

/// Theorem 2: after GST, every correct process discovers all correct sink
/// members and receives their PDs, within a delay bounded by the graph
/// distance structure.
#[test]
fn theorem2_discovery_convergence_and_bound() {
    let fig = fig1b();
    let setup = SystemSetup::new(fig.graph());
    let gst = 200u64;
    let delta = 10u64;
    let period = 20u64;
    let mut sim = Simulation::new(SimConfig {
        seed: 3,
        max_time: 100_000,
        policy: DelayPolicy::PartialSynchrony {
            gst,
            delta,
            pre_gst_max: 150,
        },
    });
    for v in fig.graph().vertices() {
        if fig.byzantine().contains(&v) {
            continue;
        }
        let state = DiscoveryState::from_setup(&setup, v).unwrap();
        sim.add_actor(Box::new(DiscoveryActor::new(state, period)));
    }
    let correct_sink = process_set([1, 2, 3]);
    let correct: Vec<_> = fig.correct().into_iter().collect();
    let converged = sim.run_until(|s| {
        correct.iter().all(|&v| {
            s.actor_as::<DiscoveryActor>(v)
                .is_some_and(|a| correct_sink.iter().all(|&m| a.state().view().has_pd_of(m)))
        })
    });
    assert!(converged);
    // Theorem 2's bound is GST + 2(d−1)δ in the round-free model; with a
    // periodic tick the per-hop cost gains one period. d ≤ diameter of the
    // correct graph.
    let d = fig.safe_subgraph().max_finite_distance() as u64;
    let bound = gst + 2 * d * (delta + period);
    assert!(
        sim.now() <= bound,
        "converged at {} > bound {bound}",
        sim.now()
    );
}

/// Theorems 4/5: the Sink algorithm returns all and only sink members —
/// identically at every correct process, matching the exact search.
#[test]
fn theorem5_sink_detection_sound_and_consistent() {
    for seed in 0..6 {
        let sys = Generator::from_seed(seed)
            .generate(&GdiParams::new(1))
            .unwrap();
        let view = KnowledgeView::omniscient(&sys.graph);
        let search = CandidateSearch::default();
        let heuristic = search.sink_with_threshold(&view, 1).expect("sink found");
        assert_eq!(heuristic.members(), sys.expected_detection(), "seed {seed}");
        if view.received().len() <= 14 {
            let exact = bft_cupft::graph::exact_sink_with_threshold(&view, 1, 14)
                .unwrap()
                .expect("exact sink");
            assert_eq!(exact.members(), heuristic.members(), "seed {seed}");
        }
    }
}

/// Theorems 8/9: the Core algorithm returns the unique core on extended
/// graphs, and its member set equals the best exact sink's.
#[test]
fn theorem9_core_detection_matches_exact() {
    for fig in [fig4a(), fig4b()] {
        let view = KnowledgeView::omniscient(fig.graph());
        let core = CandidateSearch::default()
            .best_core(&view)
            .expect("core found");
        assert_eq!(
            &core.members(),
            fig.expected_sink().unwrap(),
            "{}",
            fig.name()
        );
        let exact = exact_best_sink(&view, 14).unwrap().expect("exact best");
        assert_eq!(exact.members(), core.members(), "{}", fig.name());
        assert_eq!(exact.threshold(), core.threshold(), "{}", fig.name());
    }
}

/// Definition 2 sanity across the generated extended family.
#[test]
fn extended_family_generated_graphs_validate() {
    let mut params = GdiParams::new(1);
    params.extended = true;
    params.byzantine_count = 0;
    params.non_sink_size = 4;
    for seed in 0..4 {
        let sys = Generator::from_seed(seed).generate(&params).unwrap();
        let report = is_extended_k_osr(&sys.safe_subgraph(), 2, 12).unwrap();
        assert!(report.holds(), "seed {seed}: {report:?}");
        assert_eq!(report.core.unwrap().members, sys.sink);
    }
}

/// Theorem 10 end-to-end: consensus in the BFT-CUPFT model, with the core
/// detection consistent across every correct process (the property whose
/// absence breaks mixed-committee safety).
#[test]
fn theorem10_consistent_detection_then_consensus() {
    for seed in 0..4 {
        let scenario = Scenario::new(fig4b().graph().clone(), ProtocolMode::UnknownThreshold)
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_seed(seed);
        let outcome = run_scenario(&scenario);
        assert!(outcome.check().consensus_solved(), "seed {seed}");
        assert_eq!(
            outcome.distinct_detections().len(),
            1,
            "seed {seed}: all correct processes must return the same core"
        );
    }
}

/// The Section III worked example, end to end: process 2 slow (crashy
/// scheduling via partition), Byzantine 4 claiming PD {1,2,3}; process 1
/// still identifies sink {1,2,3,4}.
#[test]
fn section3_worked_example_detection() {
    let mut view = KnowledgeView::new(1.into(), process_set([2, 3, 4]));
    view.record_pd(3.into(), process_set([1, 2, 4]));
    view.record_pd(4.into(), process_set([1, 2, 3]));
    let detection = CandidateSearch::default()
        .sink_with_threshold(&view, 1)
        .expect("worked example must identify the sink");
    assert_eq!(detection.members(), process_set([1, 2, 3, 4]));
}
