//! The ScenarioSuite acceptance grid: a 32-scenario cross product (graph
//! family × fault assignment × delay policy × seed) fanned across worker
//! threads, through *both* substrates behind the shared `Runtime` trait.

use bft_cupft::core::{FaultCase, ProtocolMode, RuntimeKind, ScenarioGrid, ScenarioSuite};
use bft_cupft::graph::{fig1b, fig4a};
use bft_cupft::net::DelayPolicy;

/// graph {fig1b, fig4a} × fault {correct, silent} × policy {sync, psync}
/// × seed {0..4} = 32 scenarios. Faults are per-graph (each witness graph
/// has its own Byzantine process), so the grid is built per graph and
/// merged.
fn acceptance_grid() -> ScenarioSuite {
    let policies = |grid: ScenarioGrid| {
        grid.policy("sync", DelayPolicy::Synchronous { delta: 10 }, 200_000)
            .policy(
                "psync",
                DelayPolicy::PartialSynchrony {
                    gst: 200,
                    delta: 10,
                    pre_gst_max: 120,
                },
                200_000,
            )
            .seeds(0..4)
    };
    let mut suite = policies(
        ScenarioGrid::new()
            .graph(
                "fig1b",
                fig1b().graph().clone(),
                ProtocolMode::KnownThreshold(1),
            )
            .fault(FaultCase::none())
            .fault(FaultCase::silent(4)),
    )
    .build();
    suite.extend(
        policies(
            ScenarioGrid::new()
                .graph(
                    "fig4a",
                    fig4a().graph().clone(),
                    ProtocolMode::UnknownThreshold,
                )
                .fault(FaultCase::none())
                .fault(FaultCase::silent(9)),
        )
        .build(),
    );
    assert_eq!(suite.len(), 32);
    suite
}

#[test]
fn grid_of_32_solves_consensus_on_simulation() {
    let report = acceptance_grid().run(RuntimeKind::Sim);
    assert_eq!(report.verdicts.len(), 32);
    assert!(
        report.all_solved(),
        "failures on sim: {:?}",
        report.failures()
    );
    assert!(report.workers >= 1);
}

#[test]
fn grid_runs_are_deterministic_on_simulation() {
    let suite = acceptance_grid();
    let a = suite.run(RuntimeKind::Sim);
    let b = suite.run(RuntimeKind::Sim);
    for (va, vb) in a.verdicts.iter().zip(&b.verdicts) {
        assert_eq!(va.label, vb.label);
        assert_eq!(va.outcome.decisions, vb.outcome.decisions);
        assert_eq!(va.outcome.end_time, vb.outcome.end_time);
        assert_eq!(va.outcome.stats, vb.outcome.stats);
    }
}

#[test]
fn grid_of_32_solves_consensus_on_threads() {
    let mut suite = acceptance_grid();
    // Tick-denominated knobs are read as milliseconds on the threaded
    // substrate: shorten discovery, lengthen the view timeout so real
    // scheduling jitter cannot trigger spurious view changes.
    for entry in suite.entries_mut() {
        entry.scenario.discovery_period = 10;
        entry.scenario.view_timeout_base = 2_000;
    }
    let report = suite.run(RuntimeKind::Threaded);
    assert_eq!(report.verdicts.len(), 32);
    assert!(
        report.all_solved(),
        "failures on threads: {:?}",
        report.failures()
    );
    // Every scenario must have reached agreement on a single value.
    for verdict in &report.verdicts {
        assert_eq!(
            verdict.check.decided_values.len(),
            1,
            "{}: {:?}",
            verdict.label,
            verdict.check
        );
    }
}
