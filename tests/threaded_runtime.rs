//! The protocol stack on real OS threads: agreement must survive real
//! scheduling nondeterminism.

use std::collections::BTreeSet;
use std::time::Duration;

use bft_cupft::committee::Value;
use bft_cupft::core::{Node, NodeConfig, NodeMsg, ProtocolMode};
use bft_cupft::detector::SystemSetup;
use bft_cupft::graph::{fig1b, fig4b};
use bft_cupft::net::threaded::{run_threaded, Board, ThreadedConfig};
use bft_cupft::net::Actor;

fn run_graph(graph: &bft_cupft::graph::DiGraph, mode: ProtocolMode, skip: &[u64]) -> Vec<Vec<u8>> {
    let setup = SystemSetup::new(graph);
    let board: Board<Vec<u8>> = Board::new();
    let mut actors: Vec<Box<dyn Actor<NodeMsg>>> = Vec::new();
    for v in graph.vertices() {
        if skip.contains(&v.raw()) {
            continue; // silent Byzantine: simply not scheduled
        }
        let config = NodeConfig {
            mode,
            discovery_period: 10,
            replica: bft_cupft::committee::ReplicaConfig { timeout_base: 400 },
            crash_at: None,
        };
        let value = Value::from(format!("v{}", v.raw()).into_bytes());
        let node = Node::from_setup(&setup, v, value, config)
            .unwrap()
            .with_board(board.clone());
        actors.push(Box::new(node));
    }
    let expected = actors.len();
    // Supervisor: stop the runtime as soon as every node has published.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher_board = board.clone();
    let watcher_stop = stop.clone();
    let watcher = std::thread::spawn(move || {
        for _ in 0..600 {
            if watcher_board.len() >= expected {
                watcher_stop.store(true, std::sync::atomic::Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
    let _report = run_threaded(
        actors,
        ThreadedConfig {
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(6),
            wall_timeout: Duration::from_secs(60),
            seed: 5,
            stop: Some(stop),
        },
    );
    watcher.join().unwrap();
    let decisions = board.snapshot();
    assert_eq!(decisions.len(), expected, "every live node must decide");
    decisions.into_values().collect()
}

#[test]
fn bft_cup_agreement_on_threads() {
    let fig = fig1b();
    let decisions = run_graph(fig.graph(), ProtocolMode::KnownThreshold(1), &[4]);
    let distinct: BTreeSet<&Vec<u8>> = decisions.iter().collect();
    assert_eq!(distinct.len(), 1, "agreement on threads");
}

#[test]
fn bft_cupft_agreement_on_threads() {
    let fig = fig4b();
    let decisions = run_graph(fig.graph(), ProtocolMode::UnknownThreshold, &[]);
    let distinct: BTreeSet<&Vec<u8>> = decisions.iter().collect();
    assert_eq!(distinct.len(), 1, "agreement on threads");
}
