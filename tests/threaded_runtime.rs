//! The protocol stack on real OS threads: agreement must survive real
//! scheduling nondeterminism.
//!
//! Migrated onto the unified `Runtime` API: the same `Scenario` that
//! drives the deterministic simulator runs here on
//! `cupft_net::threaded::ThreadedRuntime` via `Scenario::run_on`, and the
//! parity test checks both substrates decide the same value.

use bft_cupft::core::{ByzantineStrategy, ProtocolMode, RuntimeKind, Scenario, ScenarioOutcome};
use bft_cupft::graph::{fig1b, fig4b, DiGraph};

/// A scenario tuned for wall-clock execution: tick-denominated knobs
/// become milliseconds on the threaded runtime, so keep the discovery
/// period short and the view timeout generous. A premature view change is
/// the only source of cross-runtime decision divergence, so the timeout
/// must exceed any plausible CI scheduling stall — at 30 s a stall long
/// enough to rotate the leader would hit the 60 s wall timeout (a
/// reported non-termination, not a silently different value) first.
fn wall_clock_scenario(graph: &DiGraph, mode: ProtocolMode) -> Scenario {
    let mut scenario = Scenario::new(graph.clone(), mode);
    scenario.discovery_period = 10;
    scenario.view_timeout_base = 30_000;
    scenario
}

fn run_threaded_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let outcome = scenario.run_on(RuntimeKind::Threaded);
    let check = outcome.check();
    assert!(
        check.consensus_solved(),
        "consensus on threads: {check:?} ({:?})",
        outcome.decisions
    );
    outcome
}

#[test]
fn bft_cup_agreement_on_threads() {
    let fig = fig1b();
    let scenario = wall_clock_scenario(fig.graph(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_seed(5);
    let outcome = run_threaded_scenario(&scenario);
    assert_eq!(
        outcome.check().decided_values.len(),
        1,
        "agreement on threads"
    );
}

#[test]
fn bft_cupft_agreement_on_threads() {
    let fig = fig4b();
    let scenario = wall_clock_scenario(fig.graph(), ProtocolMode::UnknownThreshold).with_seed(5);
    let outcome = run_threaded_scenario(&scenario);
    assert_eq!(
        outcome.check().decided_values.len(),
        1,
        "agreement on threads"
    );
}

/// Sim/threaded parity: the same `Scenario`, run through the shared
/// `Runtime` trait on both substrates, identifies the same sink/core and
/// decides the same value.
#[test]
fn same_scenario_decides_same_value_on_both_runtimes() {
    let fig = fig1b();
    let scenario = wall_clock_scenario(fig.graph(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_seed(11);

    let sim = scenario.run_on(RuntimeKind::Sim);
    let threaded = run_threaded_scenario(&scenario);

    let sim_check = sim.check();
    assert!(sim_check.consensus_solved(), "{sim_check:?}");
    assert_eq!(
        sim_check.decided_values,
        threaded.check().decided_values,
        "both runtimes must decide the same value"
    );
    assert_eq!(
        sim.distinct_detections(),
        threaded.distinct_detections(),
        "both runtimes must identify the same sink"
    );
}
