//! Acceptance tests for the parallel certificate-verification pipeline
//! (stateless/stateful split, shared verdict pool, batch HMAC
//! verification).
//!
//! Four claims:
//!
//! 1. **Decision parity** — across three graph families and pipeline
//!    settings `{0 (serial baseline), 1, 4}` workers, both substrates
//!    reach exactly the decisions the serial deterministic simulator
//!    reaches. Where verification runs (inline, shared memo, worker pool)
//!    must never leak into what gets decided.
//! 2. **Trace determinism** — simulator execution traces are
//!    byte-identical (fingerprints included) with the pipeline on or off:
//!    the virtual stage runs synchronously at the delivery event and
//!    injects nothing.
//! 3. **Fixpoint insensitivity** (property test) — under message
//!    reordering and sender-dropping adversaries, pooled absorb reaches
//!    the same knowledge fixpoint as serial absorb, view-for-view.
//! 4. **Forgery accounting under concurrency** — a forged record replayed
//!    into many processes absorbing concurrently against one shared pool
//!    is counted exactly once globally and once per process.

use std::sync::Arc;

use bft_cupft::adversary::TamperSpec;
use bft_cupft::core::{
    run_scenario_recorded, ByzantineStrategy, ProtocolMode, RuntimeKind, Scenario,
};
use bft_cupft::detector::{PdCertificate, SystemSetup};
use bft_cupft::discovery::{DiscoveryActor, DiscoveryMsg, DiscoveryState, GossipMode, VerifyStage};
use bft_cupft::graph::{fig1b, process_set, DiGraph, GraphFamily, KnowledgeView, ProcessId};
use bft_cupft::net::sim::Simulation;
use bft_cupft::net::{DelayPolicy, SimConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Pipeline settings swept by the parity tests: the pinned serial
/// baseline, a single-worker pool, and a four-worker pool.
const POOLS: [usize; 3] = [0, 1, 4];

/// Retunes tick-denominated knobs for the threaded substrate (they are
/// read as milliseconds there).
fn threaded_variant(scenario: &Scenario, pool: usize) -> Scenario {
    let mut s = scenario.clone().with_verify_pool(pool);
    s.discovery_period = 10;
    s.view_timeout_base = 2_000;
    s
}

/// The parity workloads: three generated families at small n, all
/// consensus-solvable under `KnownThreshold(1)` with all processes
/// correct, plus the Fig. 1(b) witness with a silent Byzantine.
fn parity_scenarios() -> Vec<(String, Scenario)> {
    let families = [
        ("erdos-renyi@n16", GraphFamily::erdos_renyi(16, 1)),
        ("k-diamond@n16", GraphFamily::k_diamond(16, 1)),
        (
            "bridged-partition@n16",
            GraphFamily::bridged_partition(16, 1),
        ),
    ];
    let mut scenarios: Vec<(String, Scenario)> = families
        .into_iter()
        .map(|(label, family)| {
            let graph = family
                .generate(11)
                .expect("valid family parameterization")
                .system
                .graph;
            (
                label.to_string(),
                Scenario::new(graph, ProtocolMode::KnownThreshold(1)).with_seed(5),
            )
        })
        .collect();
    scenarios.push((
        "fig1b/silent4".into(),
        Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, ByzantineStrategy::Silent)
            .with_seed(3),
    ));
    scenarios
}

#[test]
fn decisions_match_serial_sim_across_families_and_pool_sizes() {
    for (label, scenario) in parity_scenarios() {
        let serial = scenario
            .clone()
            .with_verify_pool(0)
            .run_on(RuntimeKind::Sim);
        assert!(
            serial.check().consensus_solved(),
            "{label} serial sim: {serial:?}"
        );
        for pool in POOLS {
            let sim = scenario
                .clone()
                .with_verify_pool(pool)
                .run_on(RuntimeKind::Sim);
            assert_eq!(
                serial.decisions, sim.decisions,
                "{label}: sim decisions must not depend on the pipeline (pool={pool})"
            );
            let threaded = threaded_variant(&scenario, pool).run_on(RuntimeKind::Threaded);
            assert!(
                threaded.check().consensus_solved(),
                "{label} threaded pool={pool}: {:?}",
                threaded.decisions
            );
            assert_eq!(
                serial.decisions, threaded.decisions,
                "{label}: threaded (pool={pool}) decisions must equal serial sim"
            );
        }
    }
}

/// The simulator's virtual stage is invisible in every recorded artifact:
/// pooled and serial runs of the same scenario produce byte-identical
/// execution traces (and hence equal fingerprints — the shrinker/replay
/// guarantee), identical outcomes, and identical network statistics.
#[test]
fn sim_traces_are_byte_identical_pooled_vs_serial() {
    let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_seed(7);
    let (serial_outcome, serial_trace) =
        run_scenario_recorded(&scenario.clone().with_verify_pool(0));
    assert!(serial_outcome.check().consensus_solved());
    for pooled in [scenario.clone(), scenario.clone().with_verify_pool(4)] {
        let (outcome, trace) = run_scenario_recorded(&pooled);
        assert_eq!(serial_trace.fingerprint(), trace.fingerprint());
        assert_eq!(serial_trace, trace);
        assert_eq!(serial_outcome.decisions, outcome.decisions);
        assert_eq!(serial_outcome.decided_times, outcome.decided_times);
        assert_eq!(serial_outcome.end_time, outcome.end_time);
        assert_eq!(serial_outcome.stats, outcome.stats);
    }
}

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// A family sample picked by index, at a small size.
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (0u8..3, 10usize..18, 0u64..50).prop_map(|(which, size, seed)| {
        let family = match which {
            0 => GraphFamily::erdos_renyi(size, 1),
            1 => GraphFamily::k_diamond(size, 1),
            _ => GraphFamily::bridged_partition(size.max(12), 1),
        };
        family
            .scaled(size)
            .generate(seed)
            .expect("valid family parameters")
            .system
            .graph
    })
}

fn arb_tamper() -> impl Strategy<Value = Option<TamperSpec>> {
    (0u8..2, 1u64..60, 0u64..1000).prop_map(|(which, window, seed)| match which {
        0 => None,
        _ => Some(TamperSpec::ReorderWindow { window, seed }),
    })
}

/// Runs discovery-only actors under `tamper`, serial or pooled (shared
/// pool on every state plus the verification stage installed on the
/// simulator), returning each process's final view.
fn run_discovery(
    graph: &DiGraph,
    pooled: bool,
    seed: u64,
    tamper: &Option<TamperSpec>,
    silenced: Option<ProcessId>,
) -> BTreeMap<ProcessId, KnowledgeView> {
    let setup = SystemSetup::new(graph);
    let mut sim: Simulation<DiscoveryMsg> = Simulation::new(SimConfig {
        seed,
        max_time: 20_000,
        policy: psync(),
    });
    let mut parts: Vec<TamperSpec> = tamper.iter().cloned().collect();
    if let Some(victim) = silenced {
        parts.push(TamperSpec::DropFrom {
            senders: process_set([victim.raw()]),
        });
    }
    if !parts.is_empty() {
        sim.set_tamper(TamperSpec::Chain(parts).build());
    }
    if pooled {
        sim.set_preflight(Arc::new(VerifyStage::new(
            setup.pool().clone(),
            setup.registry().clone(),
        )));
    }
    for v in graph.vertices() {
        let mut state = DiscoveryState::from_setup(&setup, v)
            .unwrap()
            .with_gossip(GossipMode::Delta);
        if pooled {
            state = state.with_shared_pool(setup.pool().clone());
        }
        sim.add_actor(Box::new(DiscoveryActor::new(state, 20)));
    }
    sim.run_until(|s| s.now() > 12_000);
    sim.into_actors()
        .into_iter()
        .map(|(id, actor)| {
            let d = actor
                .as_any()
                .downcast_ref::<DiscoveryActor>()
                .expect("discovery actor");
            (id, d.state().view().clone())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharing verdicts (and pre-settling them in the stage) never moves
    /// the knowledge fixpoint, under reordering adversaries.
    #[test]
    fn pooled_absorb_preserves_fixpoint_under_reordering(
        graph in arb_graph(),
        seed in 0u64..500,
        tamper in arb_tamper(),
    ) {
        let serial = run_discovery(&graph, false, seed, &tamper, None);
        let pooled = run_discovery(&graph, true, seed, &tamper, None);
        prop_assert_eq!(&serial, &pooled);
        prop_assert!(pooled.values().all(|v| v.received_count() >= 2));
    }

    /// Same with a silenced (DropFrom) periphery sender: the pipeline
    /// cannot resurrect certificates the network never carried.
    #[test]
    fn pooled_absorb_preserves_fixpoint_under_drops(
        graph in arb_graph(),
        seed in 0u64..500,
        tamper in arb_tamper(),
    ) {
        let victim = graph.vertices().max().expect("non-empty graph");
        let serial = run_discovery(&graph, false, seed, &tamper, Some(victim));
        let pooled = run_discovery(&graph, true, seed, &tamper, Some(victim));
        prop_assert_eq!(&serial, &pooled);
        for (&id, view) in &pooled {
            if id != victim {
                prop_assert!(!view.has_pd_of(victim));
            }
        }
    }
}

/// Many processes concurrently absorbing the same forged-replay bundle
/// against one shared pool: the pool counts the forgery exactly once
/// system-wide, every process counts it exactly once locally, and the
/// genuine certificates aboard the same bundle all land.
#[test]
fn forged_replay_is_counted_once_by_the_shared_memo_under_concurrency() {
    let fig = fig1b();
    let setup = SystemSetup::new(fig.graph());
    let forged = Arc::new(PdCertificate::forge(ProcessId::new(2), &process_set([999])));
    let mut bundle: Vec<Arc<PdCertificate>> = fig
        .graph()
        .vertices()
        .map(|v| setup.shared_certificate_for(v).expect("registered"))
        .collect();
    bundle.push(forged.clone());

    let states: Vec<DiscoveryState> = std::thread::scope(|scope| {
        let handles: Vec<_> = fig
            .graph()
            .vertices()
            .map(|v| {
                let setup = &setup;
                let bundle = &bundle;
                scope.spawn(move || {
                    let mut state = DiscoveryState::from_setup(setup, v)
                        .unwrap()
                        .with_shared_pool(setup.pool().clone());
                    // Replay the identical bundle several times: only the
                    // first absorb of each record does any work.
                    for _ in 0..4 {
                        state.absorb_batch(bundle);
                    }
                    state
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("absorbing thread panicked"))
            .collect()
    });

    assert_eq!(
        setup.pool().forged_records(),
        1,
        "the shared memo must count the forged record once system-wide"
    );
    assert_eq!(setup.pool().verdict(forged.fingerprint()), Some(false));
    let n = fig.graph().vertices().count();
    for state in &states {
        assert_eq!(state.rejected_forgeries, 1, "once per process");
        assert_eq!(
            state.certificates().count(),
            n,
            "every genuine certificate aboard the bundle must land"
        );
        assert!(!state.view().has_pd_of(ProcessId::new(999)));
    }
}
