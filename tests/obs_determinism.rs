//! Acceptance tests for the observability layer (`cupft_obs`).
//!
//! Three claims:
//!
//! 1. **Trace determinism** — an observed simulator run is on the virtual
//!    clock, so two runs of the same `Scenario` + seed produce equal
//!    [`ObsReport`]s AND byte-identical JSON through
//!    [`cupft_bench::obs_json`] (the property that makes the committed
//!    `OBS_discovery.json` diffable across machines). Checked at n≥100.
//! 2. **Observer effect: none** — enabling `observe` changes nothing the
//!    protocol can see: decisions, decided times, detections, end time,
//!    and `NetStats` are identical observe-on vs observe-off on the
//!    simulator, and decisions/detections match on the threaded runtime.
//! 3. **Coverage** — the observed run carries all five phase marks for
//!    every deciding node, the verify-stage queue/batch histograms, and
//!    the event-loop tick profile the ISSUE asks for.

use bft_cupft::core::{ByzantineStrategy, ProtocolMode, RuntimeKind, Scenario, ScenarioOutcome};
use bft_cupft::graph::{fig1b, GraphFamily};
use bft_cupft::obs::{ObsReport, PhaseMark};
use cupft_bench::obs_json;

/// A planted-committee family at the acceptance scale (n ≥ 100).
fn scale_scenario() -> Scenario {
    let graph = GraphFamily::k_diamond(100, 1)
        .generate(100)
        .expect("valid family parameterization")
        .system
        .graph;
    assert!(graph.vertex_count() >= 100);
    Scenario::new(graph, ProtocolMode::KnownThreshold(1)).with_seed(9)
}

/// A small scenario with a Byzantine process, for the cheaper parity runs.
fn small_scenario() -> Scenario {
    Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_byzantine(4, ByzantineStrategy::Silent)
        .with_seed(3)
}

fn observed_sim(scenario: &Scenario) -> (ScenarioOutcome, ObsReport) {
    let mut outcome = scenario.clone().with_observe(true).run_on(RuntimeKind::Sim);
    let obs = outcome
        .obs
        .take()
        .expect("observed run must carry a report");
    (outcome, obs)
}

#[test]
fn observed_sim_runs_are_byte_deterministic_at_scale() {
    let scenario = scale_scenario();
    let (outcome_a, obs_a) = observed_sim(&scenario);
    let (outcome_b, obs_b) = observed_sim(&scenario);
    assert!(outcome_a.check().consensus_solved(), "cell must solve");
    assert_eq!(outcome_a.decisions, outcome_b.decisions);
    assert_eq!(obs_a, obs_b, "same scenario + seed must give equal reports");
    assert_eq!(
        obs_a.clock_domain.name(),
        "virtual",
        "sim obs must be virtual-clock (wall time would break byte-identity)"
    );
    let json_a = obs_json(&obs_a).to_string();
    let json_b = obs_json(&obs_b).to_string();
    assert_eq!(json_a, json_b, "obs JSON must be byte-identical");

    // Coverage: all five phase marks for every deciding node...
    let deciders = outcome_a.decisions.values().filter(|d| d.is_some()).count();
    assert!(deciders > 0);
    assert_eq!(
        obs_a.complete_timelines(),
        deciders,
        "every deciding node must carry first-gossip → … → decided"
    );
    for mark in PhaseMark::all() {
        assert!(
            obs_a.phase_max(mark).is_some(),
            "phase {} must be marked by someone",
            mark.name()
        );
    }
    // ...the verify-stage pipeline profile (the default scenario runs the
    // shared-pool preflight stage)...
    assert!(obs_a.counter("verify_bundles") > 0);
    let batches = obs_a
        .histogram("verify_batch_certs")
        .expect("batch-size histogram");
    assert!(batches.count() > 0 && batches.max().unwrap_or(0) >= 1);
    assert!(
        obs_a.histogram("stage_queue_wait_us").is_some(),
        "sim stage wait histogram (all-zero: the virtual stage is synchronous)"
    );
    // ...and the event-loop tick profile.
    let per_tick = obs_a
        .histogram("sim_events_per_tick")
        .expect("event-loop profile");
    assert_eq!(per_tick.count(), obs_a.counter("sim_ticks"));
    assert!(obs_a.histogram("sim_queue_depth").is_some());
    assert!(obs_a.counter("discovery_ticks") > 0);
}

#[test]
fn sim_outcome_is_identical_observe_on_and_off() {
    for scenario in [small_scenario(), scale_scenario()] {
        let plain = scenario.clone().run_on(RuntimeKind::Sim);
        let (observed, _) = observed_sim(&scenario);
        assert!(plain.obs.is_none(), "observe defaults to off");
        assert_eq!(plain.decisions, observed.decisions);
        assert_eq!(plain.decided_times, observed.decided_times);
        assert_eq!(plain.end_time, observed.end_time);
        assert_eq!(plain.stats, observed.stats, "NetStats must not move");
        assert_eq!(
            plain.distinct_detections(),
            observed.distinct_detections(),
            "identified sink/core sets must not move"
        );
    }
}

#[test]
fn threaded_outcome_is_unaffected_by_observation() {
    // Tick knobs read as milliseconds on the threaded substrate.
    let mut scenario = small_scenario();
    scenario.discovery_period = 10;
    scenario.view_timeout_base = 2_000;
    let plain = scenario.clone().run_on(RuntimeKind::Threaded);
    let mut observed = scenario
        .clone()
        .with_observe(true)
        .run_on(RuntimeKind::Threaded);
    let obs = observed.obs.take().expect("observed threaded run reports");
    assert!(plain.check().consensus_solved());
    assert_eq!(plain.decisions, observed.decisions);
    assert_eq!(plain.distinct_detections(), observed.distinct_detections());
    // The threaded report is a wall-clock profile (not a deterministic
    // trace): assert shape, not values.
    assert_eq!(obs.clock_domain.name(), "wall");
    assert_eq!(
        obs.complete_timelines(),
        observed.decisions.values().filter(|d| d.is_some()).count()
    );
    assert!(obs.counter("stage_bundles") > 0);
    assert!(obs.histogram("router_inbox_depth").is_some());
    assert!(obs.gauges.contains_key("router_shards"));
}
