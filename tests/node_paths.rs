//! Node-level white-box tests: the Algorithm 3 learning path, the answer
//! protocol, and crash behavior, driven by hand through `Context`.

use bft_cupft::committee::Value;
use bft_cupft::core::{Node, NodeConfig, NodeMsg, Phase, ProtocolMode};
use bft_cupft::detector::SystemSetup;
use bft_cupft::discovery::{DiscoveryMsg, SyncState, DISCOVERY_TICK};
use bft_cupft::graph::{fig1b, process_set, ProcessId};
use bft_cupft::net::{Actor, Context};
use std::sync::Arc;

fn p(n: u64) -> ProcessId {
    ProcessId::new(n)
}

/// Wraps raw certificates in a SETPDS message.
fn set_pds(certs: Vec<bft_cupft::detector::PdCertificate>) -> NodeMsg {
    NodeMsg::Discovery(DiscoveryMsg::SetPds {
        certs: certs.into_iter().map(Arc::new).collect(),
        state: SyncState::default(),
    })
}

/// Builds a non-member node (process 7 of Fig. 1b) and walks it to the
/// Learning phase by feeding it the sink's PDs directly.
fn learning_node() -> Node {
    let fig = fig1b();
    let setup = SystemSetup::new(fig.graph());
    let mut node = Node::from_setup(
        &setup,
        p(7),
        Value::from_static(b"mine"),
        NodeConfig {
            mode: ProtocolMode::KnownThreshold(1),
            ..NodeConfig::default()
        },
    )
    .unwrap();
    // Feed every correct process's signed PD through one SETPDS.
    let certs: Vec<_> = fig
        .graph()
        .vertices()
        .map(|v| setup.certificate_for(v).unwrap())
        .collect();
    let mut ctx = Context::new(10, p(7));
    node.on_message(p(5), set_pds(certs), &mut ctx);
    // Identification runs on the discovery tick, not per message.
    node.on_timer(DISCOVERY_TICK, &mut ctx);
    assert_eq!(node.phase(), Phase::Learning, "{:?}", node.detection());
    assert_eq!(node.detection().unwrap().members, process_set([1, 2, 3, 4]));
    node
}

#[test]
fn learner_requests_decided_value_from_all_members() {
    let fig = fig1b();
    let setup = SystemSetup::new(fig.graph());
    let mut node = Node::from_setup(
        &setup,
        p(7),
        Value::from_static(b"mine"),
        NodeConfig {
            mode: ProtocolMode::KnownThreshold(1),
            ..NodeConfig::default()
        },
    )
    .unwrap();
    let certs: Vec<_> = fig
        .graph()
        .vertices()
        .map(|v| setup.certificate_for(v).unwrap())
        .collect();
    let mut ctx = Context::new(10, p(7));
    node.on_message(p(5), set_pds(certs), &mut ctx);
    node.on_timer(DISCOVERY_TICK, &mut ctx);
    let targets: Vec<u64> = ctx
        .queued_sends()
        .iter()
        .filter(|(_, m)| matches!(m, NodeMsg::GetDecidedVal))
        .map(|(to, _)| to.raw())
        .collect();
    assert_eq!(targets, vec![1, 2, 3, 4]);
}

#[test]
fn learner_decides_on_majority_of_matching_answers() {
    let mut node = learning_node();
    let mut ctx = Context::new(20, p(7));
    // |S| = 4: learning threshold = ceil(5/2) = 3 distinct members.
    node.on_message(
        p(1),
        NodeMsg::DecidedVal(Value::from_static(b"X")),
        &mut ctx,
    );
    assert!(node.decision().is_none());
    // duplicate from the same member does not advance the tally
    node.on_message(
        p(1),
        NodeMsg::DecidedVal(Value::from_static(b"X")),
        &mut ctx,
    );
    assert!(node.decision().is_none());
    // a conflicting answer opens its own tally
    node.on_message(
        p(4),
        NodeMsg::DecidedVal(Value::from_static(b"Y")),
        &mut ctx,
    );
    assert!(node.decision().is_none());
    node.on_message(
        p(2),
        NodeMsg::DecidedVal(Value::from_static(b"X")),
        &mut ctx,
    );
    assert!(node.decision().is_none());
    node.on_message(
        p(3),
        NodeMsg::DecidedVal(Value::from_static(b"X")),
        &mut ctx,
    );
    assert_eq!(node.decision().map(|v| v.as_ref()), Some(&b"X"[..]));
}

#[test]
fn learner_ignores_answers_from_non_members() {
    let mut node = learning_node();
    let mut ctx = Context::new(20, p(7));
    for from in [5u64, 6, 8] {
        node.on_message(
            p(from),
            NodeMsg::DecidedVal(Value::from_static(b"X")),
            &mut ctx,
        );
    }
    assert!(
        node.decision().is_none(),
        "answers from non-members must not count"
    );
}

#[test]
fn undecided_node_parks_requests_and_answers_on_decision() {
    let mut node = learning_node();
    let mut ctx = Context::new(20, p(7));
    node.on_message(p(8), NodeMsg::GetDecidedVal, &mut ctx);
    assert!(
        ctx.queued_sends().is_empty(),
        "no answer before a decision exists"
    );
    // Decide via three matching answers; the parked request must be
    // answered in the same step.
    let mut ctx = Context::new(30, p(7));
    for from in [1u64, 2, 3] {
        node.on_message(
            p(from),
            NodeMsg::DecidedVal(Value::from_static(b"Z")),
            &mut ctx,
        );
    }
    let answered: Vec<(u64, &[u8])> = ctx
        .queued_sends()
        .iter()
        .filter_map(|(to, m)| match m {
            NodeMsg::DecidedVal(v) => Some((to.raw(), v.as_ref())),
            _ => None,
        })
        .collect();
    assert!(answered.contains(&(8, &b"Z"[..])));
    // a later request is answered immediately
    let mut ctx = Context::new(40, p(7));
    node.on_message(p(6), NodeMsg::GetDecidedVal, &mut ctx);
    assert_eq!(ctx.queued_sends().len(), 1);
}

#[test]
fn crashed_node_stops_mid_protocol() {
    let fig = fig1b();
    let setup = SystemSetup::new(fig.graph());
    let mut node = Node::from_setup(
        &setup,
        p(7),
        Value::from_static(b"mine"),
        NodeConfig {
            mode: ProtocolMode::KnownThreshold(1),
            crash_at: Some(15),
            ..NodeConfig::default()
        },
    )
    .unwrap();
    let mut ctx = Context::new(0, p(7));
    node.on_start(&mut ctx);
    assert!(!ctx.queued_sends().is_empty(), "alive before the crash");
    let mut ctx = Context::new(20, p(7));
    node.on_message(p(1), NodeMsg::GetDecidedVal, &mut ctx);
    node.on_timer(bft_cupft::discovery::DISCOVERY_TICK, &mut ctx);
    assert!(ctx.queued_sends().is_empty(), "silent after the crash");
    assert!(ctx.queued_timers().is_empty());
}

#[test]
fn member_node_starts_replica_and_proposes() {
    // Process 1 is a sink member and the view-0 leader.
    let fig = fig1b();
    let setup = SystemSetup::new(fig.graph());
    let mut node = Node::from_setup(
        &setup,
        p(1),
        Value::from_static(b"lead"),
        NodeConfig {
            mode: ProtocolMode::KnownThreshold(1),
            ..NodeConfig::default()
        },
    )
    .unwrap();
    let certs: Vec<_> = fig
        .graph()
        .vertices()
        .map(|v| setup.certificate_for(v).unwrap())
        .collect();
    let mut ctx = Context::new(10, p(1));
    node.on_message(p(2), set_pds(certs), &mut ctx);
    node.on_timer(DISCOVERY_TICK, &mut ctx);
    assert_eq!(node.phase(), Phase::Member);
    assert_eq!(node.replica_view(), Some(0));
    let proposals = ctx
        .queued_sends()
        .iter()
        .filter(|(_, m)| matches!(m, NodeMsg::Committee(_)))
        .count();
    assert!(proposals >= 4, "leader must broadcast its pre-prepare");
}
