//! Property tests holding every [`GraphFamily`] to its advertisement: a
//! family may only *claim* what each of its samples actually satisfies,
//! across seeds, sizes, and fault thresholds, as judged by the exact
//! recognizers and the SCC fast paths.

use bft_cupft::graph::{
    osr_report, scale_osr_check, sink_with_threshold, CheckBudget, GraphFamily, ProcessSet,
};
use proptest::prelude::*;

/// Strategy: one family of the catalogue, re-scaled to an arbitrary small
/// size, with an arbitrary seed. Sizes stay below the generator's exact
/// verification cutoff so the osr_report cross-checks here are cheap.
fn arb_family_case() -> impl Strategy<Value = (GraphFamily, u64)> {
    (0usize..5, 1usize..=2, 10usize..=40, any::<u32>()).prop_map(|(idx, f, size, seed)| {
        let family = GraphFamily::catalogue(f)[idx].scaled(size);
        (family, seed as u64)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generation is byte-deterministic per seed.
    #[test]
    fn generation_deterministic_per_seed(case in arb_family_case()) {
        let (family, seed) = case;
        let a = family.generate(seed).unwrap();
        let b = family.generate(seed).unwrap();
        prop_assert_eq!(&a.system.graph, &b.system.graph, "{}", family.label());
        prop_assert_eq!(&a.system.sink, &b.system.sink);
        prop_assert_eq!(a.advertised, b.advertised);
    }

    /// The advertised planted sink is exactly what the SCC-based fast path
    /// identifies at the advertised fault threshold.
    #[test]
    fn planted_sink_found_by_sink_with_threshold(case in arb_family_case()) {
        let (family, seed) = case;
        let sample = family.generate(seed).unwrap();
        let adv = sample.advertised;
        if adv.unique_sink
            && adv.sink_size > 2 * adv.fault_threshold
            && adv.sink_connectivity > adv.fault_threshold
        {
            prop_assert_eq!(
                sink_with_threshold(&sample.system.graph, adv.fault_threshold).as_ref(),
                Some(&sample.system.sink),
                "{}", family.label()
            );
        }
    }

    /// The advertised connectivity bound holds: capping at the bound
    /// saturates it.
    #[test]
    fn advertised_kappa_bound_holds(case in arb_family_case()) {
        let (family, seed) = case;
        let sample = family.generate(seed).unwrap();
        let sub = sample.system.graph.induced(&sample.system.sink);
        let adv = sample.advertised.sink_connectivity;
        prop_assert_eq!(
            sub.strong_connectivity_capped(adv), adv,
            "{}: advertised kappa >= {adv} does not hold", family.label()
        );
    }

    /// A definite k-OSR advertisement (`Some(b)`) matches the exact
    /// recognizer's verdict, and the budgeted fast check never contradicts
    /// the exact one.
    #[test]
    fn k_osr_advertisement_matches_recognizers(case in arb_family_case()) {
        let (family, seed) = case;
        let sample = family.generate(seed).unwrap();
        let k = sample.advertised.fault_threshold + 1;
        let exact = osr_report(&sample.system.graph, k);
        if let Some(expected) = sample.advertised.k_osr {
            prop_assert_eq!(exact.is_k_osr(), expected, "{}: {:?}", family.label(), exact);
        }
        let fast = scale_osr_check(&sample.system.graph, k, &CheckBudget::default());
        if fast.exhaustive {
            prop_assert_eq!(fast.holds_on_checked(), exact.is_k_osr(), "{}", family.label());
        } else if exact.is_k_osr() {
            // A budgeted check may miss a violation but must never invent
            // one on a satisfying graph.
            prop_assert!(fast.holds_on_checked(), "{}: {:?}", family.label(), fast);
        }
        prop_assert_eq!(fast.sink.as_ref(), exact.sink_members(), "{}", family.label());
    }

    /// The advertised minimum non-sink → sink disjoint-path count holds on
    /// every sample that promises one.
    #[test]
    fn advertised_path_floor_holds(case in arb_family_case()) {
        let (family, seed) = case;
        let sample = family.generate(seed).unwrap();
        if let Some(floor) = sample.advertised.min_sink_paths {
            let g = &sample.system.graph;
            let non_sink: ProcessSet = g
                .vertices()
                .filter(|v| !sample.system.sink.contains(v))
                .collect();
            if !non_sink.is_empty() {
                let got = g.min_cross_disjoint_paths_capped(&non_sink, &sample.system.sink, floor);
                prop_assert_eq!(got, floor, "{}", family.label());
            }
        }
    }

    /// Different seeds explore the family's random choices but never
    /// change the advertised structure (vertex count, sink, guarantees).
    #[test]
    fn seeds_vary_edges_not_structure(case in arb_family_case()) {
        let (family, seed) = case;
        let a = family.generate(seed).unwrap();
        let b = family.generate(seed.wrapping_add(1)).unwrap();
        prop_assert_eq!(
            a.system.graph.vertex_count(),
            b.system.graph.vertex_count()
        );
        prop_assert_eq!(&a.system.sink, &b.system.sink);
        prop_assert_eq!(a.advertised, b.advertised);
    }
}
