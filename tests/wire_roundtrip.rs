//! Per-message round-trip property tests for the `cupft_wire` codec.
//!
//! Two laws, checked for every wire type in the workspace (graph
//! vocabulary, crypto records, discovery/committee/node protocol
//! messages, adversary control specs, peer addresses, bench JSON):
//!
//! 1. `decode ∘ encode == id` — decoding the canonical bytes yields an
//!    equal value;
//! 2. re-encoding the decoded value is **byte-identical** — the codec is
//!    canonical, so signatures over encodings and fingerprint-based
//!    dedup are stable across hops.
//!
//! Plus the negative space: corrupt, truncated, and oversized frames are
//! rejected with structured errors (never a panic, never an over-read),
//! both at the frame envelope and inside message payloads.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
use std::sync::Arc;

use proptest::collection::{btree_set, vec as pvec};
use proptest::prelude::*;

use bft_cupft::adversary::{ChurnEvent, ChurnSpec, StrategySpec, TamperSpec};
use bft_cupft::committee::{CommitteeMsg, PreparedCert, Value, ViewChangeRecord};
use bft_cupft::core::NodeMsg;
use bft_cupft::crypto::sha256::{digest, Digest};
use bft_cupft::crypto::{domains, KeyRegistry, Signature, SignedPd, SignedValue};
use bft_cupft::detector::PdCertificate;
use bft_cupft::discovery::{DiscoveryMsg, SyncState};
use bft_cupft::graph::{ProcessId, ProcessSet};
use bft_cupft::net::PeerAddr;
use bft_cupft::wire::frame::{
    frame, read_frame, unframe, write_frame, FrameIoError, FRAME_MAGIC, HEADER_LEN,
    MAX_FRAME_PAYLOAD, WIRE_VERSION,
};
use bft_cupft::wire::{decode_from_slice, encode_to_vec, Decode, Encode, WireError};
use cupft_bench::Json;

/// The two codec laws, plus the frame envelope, for one value.
fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = encode_to_vec(v);
    let back: T = decode_from_slice(&bytes).expect("canonical bytes decode");
    assert_eq!(&back, v, "decode must invert encode");
    assert_eq!(
        encode_to_vec(&back),
        bytes,
        "re-encode must be byte-identical"
    );
    assert_eq!(
        unframe(&frame(&bytes)).expect("framed payload unframes"),
        &bytes[..],
        "frame envelope must be transparent"
    );
}

// ---- generators -----------------------------------------------------------

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u64..1_000).prop_map(ProcessId::new)
}

fn arb_pset() -> impl Strategy<Value = ProcessSet> {
    btree_set(0u64..64, 0..8).prop_map(|s| s.into_iter().map(ProcessId::new).collect())
}

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<u64>().prop_map(|seed| digest(&seed.to_be_bytes()))
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    (0u64..64, any::<u64>())
        .prop_map(|(signer, seed)| Signature::from_parts(signer, digest(&seed.to_be_bytes())))
}

fn arb_signed_pd() -> impl Strategy<Value = SignedPd> {
    (0u64..64, pvec(0u64..256, 0..10), arb_sig())
        .prop_map(|(author, pd, sig)| SignedPd::from_parts(author, pd, sig))
}

fn arb_domain() -> impl Strategy<Value = &'static str> {
    (0usize..domains::ALL.len()).prop_map(|i| domains::ALL[i])
}

fn arb_value() -> impl Strategy<Value = Value> {
    pvec(any::<u8>(), 0..48).prop_map(Value::from)
}

fn arb_signed_value() -> impl Strategy<Value = SignedValue> {
    (0u64..64, arb_domain(), arb_value(), arb_sig()).prop_map(|(signer, domain, payload, sig)| {
        SignedValue::from_parts(signer, domain, payload, sig)
    })
}

fn arb_cert() -> impl Strategy<Value = PdCertificate> {
    arb_signed_pd().prop_map(PdCertificate::from_signed)
}

fn arb_sync_state() -> impl Strategy<Value = SyncState> {
    (any::<u32>(), (any::<u64>(), any::<u64>()), any::<u32>()).prop_map(
        |(count, (hi, lo), epoch)| SyncState {
            count,
            fp: (u128::from(hi) << 64) | u128::from(lo),
            epoch,
        },
    )
}

fn arb_discovery() -> BoxedStrategy<DiscoveryMsg> {
    prop_oneof![
        (arb_pset(), arb_sync_state()).prop_map(|(have, state)| DiscoveryMsg::GetPds {
            have: Arc::new(have),
            state,
        }),
        (pvec(arb_cert(), 0..4), arb_sync_state()).prop_map(|(certs, state)| {
            DiscoveryMsg::SetPds {
                certs: certs.into_iter().map(Arc::new).collect::<Vec<_>>().into(),
                state,
            }
        }),
    ]
    .boxed()
}

fn arb_prepared_cert() -> impl Strategy<Value = PreparedCert> {
    (any::<u64>(), arb_value(), pvec(arb_signed_value(), 0..4)).prop_map(
        |(view, value, prepares)| PreparedCert {
            view,
            value,
            prepares,
        },
    )
}

fn arb_view_change() -> BoxedStrategy<ViewChangeRecord> {
    (
        any::<u64>(),
        prop_oneof![Just(None), arb_prepared_cert().prop_map(Some).boxed(),],
        arb_signed_value(),
    )
        .prop_map(|(new_view, prepared, signed)| ViewChangeRecord {
            new_view,
            prepared,
            signed,
        })
        .boxed()
}

fn arb_committee() -> BoxedStrategy<CommitteeMsg> {
    prop_oneof![
        (
            any::<u64>(),
            arb_value(),
            arb_signed_value(),
            pvec(arb_view_change(), 0..3),
        )
            .prop_map(
                |(view, value, signed, justification)| CommitteeMsg::PrePrepare {
                    view,
                    value,
                    signed,
                    justification,
                }
            ),
        (any::<u64>(), arb_digest(), arb_signed_value()).prop_map(|(view, digest, signed)| {
            CommitteeMsg::Prepare {
                view,
                digest,
                signed,
            }
        }),
        (any::<u64>(), arb_digest(), arb_signed_value()).prop_map(|(view, digest, signed)| {
            CommitteeMsg::Commit {
                view,
                digest,
                signed,
            }
        }),
        arb_view_change().prop_map(CommitteeMsg::ViewChange),
    ]
    .boxed()
}

fn arb_node_msg() -> BoxedStrategy<NodeMsg> {
    prop_oneof![
        arb_discovery().prop_map(NodeMsg::Discovery),
        arb_committee().prop_map(NodeMsg::Committee),
        Just(NodeMsg::GetDecidedVal),
        arb_value().prop_map(NodeMsg::DecidedVal),
    ]
    .boxed()
}

fn arb_peer_addr() -> BoxedStrategy<PeerAddr> {
    prop_oneof![
        arb_pid().prop_map(PeerAddr::Local),
        (any::<u32>(), any::<u16>()).prop_map(|(ip, port)| {
            PeerAddr::Tcp(SocketAddr::new(IpAddr::V4(Ipv4Addr::from(ip)), port))
        }),
        ((any::<u64>(), any::<u64>()), any::<u16>()).prop_map(|((hi, lo), port)| {
            let ip = (u128::from(hi) << 64) | u128::from(lo);
            PeerAddr::Tcp(SocketAddr::new(IpAddr::V6(Ipv6Addr::from(ip)), port))
        }),
    ]
    .boxed()
}

fn arb_tamper_leaf() -> BoxedStrategy<TamperSpec> {
    prop_oneof![
        (1u64..100, any::<u64>())
            .prop_map(|(window, seed)| TamperSpec::ReorderWindow { window, seed }),
        (arb_pset(), 0u64..50)
            .prop_map(|(senders, extra)| TamperSpec::DelayFrom { senders, extra }),
        arb_pset().prop_map(|senders| TamperSpec::DropFrom { senders }),
    ]
    .boxed()
}

fn arb_tamper() -> BoxedStrategy<TamperSpec> {
    prop_oneof![
        arb_tamper_leaf(),
        pvec(arb_tamper_leaf(), 0..3)
            .prop_map(TamperSpec::Chain)
            .boxed(),
    ]
    .boxed()
}

fn arb_churn_event() -> BoxedStrategy<ChurnEvent> {
    prop_oneof![
        (any::<u64>(), arb_pid(), arb_pset()).prop_map(|(tick, node, seed_peers)| {
            ChurnEvent::JoinAt {
                tick,
                node,
                seed_peers,
            }
        }),
        (any::<u64>(), arb_pid()).prop_map(|(tick, node)| ChurnEvent::LeaveAt { tick, node }),
        (any::<u64>(), arb_pid(), any::<u64>()).prop_map(|(tick, node, down_for)| {
            ChurnEvent::CrashRecoverAt {
                tick,
                node,
                down_for,
            }
        }),
    ]
    .boxed()
}

fn arb_strategy_leaf() -> BoxedStrategy<StrategySpec> {
    prop_oneof![
        Just(StrategySpec::Silent),
        arb_pset().prop_map(|claimed| StrategySpec::FakePd { claimed }),
        (arb_pset(), arb_pset()).prop_map(|(even, odd)| StrategySpec::EquivocatePd { even, odd }),
        (arb_pid(), arb_pset())
            .prop_map(|(victim, claimed)| StrategySpec::ForgeUnsignedPd { victim, claimed }),
        arb_value().prop_map(|value| StrategySpec::LieDecidedVal { value }),
        (arb_pset(), arb_value(), arb_value()).prop_map(|(committee, value_a, value_b)| {
            StrategySpec::EquivocateValue {
                committee,
                value_a,
                value_b,
            }
        }),
    ]
    .boxed()
}

fn arb_strategy() -> BoxedStrategy<StrategySpec> {
    prop_oneof![
        arb_strategy_leaf(),
        (any::<u64>(), arb_strategy_leaf()).prop_map(|(until, inner)| {
            StrategySpec::DelayRelease {
                until,
                inner: Box::new(inner),
            }
        }),
        (arb_pset(), arb_strategy_leaf()).prop_map(|(targets, inner)| {
            StrategySpec::TargetSubset {
                targets,
                inner: Box::new(inner),
            }
        }),
        (any::<u64>(), arb_strategy_leaf(), arb_strategy_leaf()).prop_map(|(at, before, after)| {
            StrategySpec::FlipAfter {
                at,
                before: Box::new(before),
                after: Box::new(after),
            }
        }),
    ]
    .boxed()
}

fn arb_json_leaf() -> BoxedStrategy<Json> {
    prop_oneof![
        any::<bool>().prop_map(Json::Bool),
        any::<u64>().prop_map(Json::U64),
        // Exercised through raw-bit encoding, so non-integral values
        // matter; NaN is avoided only because `Json: PartialEq` (the
        // codec itself preserves any bit pattern).
        any::<u32>().prop_map(|n| Json::F64(f64::from(n) / 7.0)),
        (0u64..1_000).prop_map(|n| Json::Str(format!("s{n}"))),
    ]
    .boxed()
}

fn arb_json() -> BoxedStrategy<Json> {
    prop_oneof![
        arb_json_leaf(),
        pvec(arb_json_leaf(), 0..4).prop_map(Json::Arr).boxed(),
        pvec(
            ((0u64..16).prop_map(|n| format!("k{n}")), arb_json_leaf()),
            0..4
        )
        .prop_map(Json::Obj)
        .boxed(),
    ]
    .boxed()
}

// ---- round-trip laws, per wire type ---------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn graph_vocabulary_roundtrips(id in arb_pid(), set in arb_pset()) {
        rt(&id);
        rt(&set);
    }

    #[test]
    fn crypto_records_roundtrip(
        sig in arb_sig(),
        pd in arb_signed_pd(),
        val in arb_signed_value(),
        cert in arb_cert(),
    ) {
        rt(&sig);
        rt(&pd);
        rt(&val);
        rt(&cert);
    }

    #[test]
    fn discovery_msgs_roundtrip(state in arb_sync_state(), msg in arb_discovery()) {
        rt(&state);
        rt(&msg);
    }

    #[test]
    fn committee_msgs_roundtrip(
        cert in arb_prepared_cert(),
        vc in arb_view_change(),
        msg in arb_committee(),
    ) {
        rt(&cert);
        rt(&vc);
        rt(&msg);
    }

    #[test]
    fn node_msgs_roundtrip(msg in arb_node_msg()) {
        rt(&msg);
    }

    #[test]
    fn peer_addrs_roundtrip(addr in arb_peer_addr()) {
        rt(&addr);
    }

    #[test]
    fn adversary_control_roundtrips(
        tamper in arb_tamper(),
        churn in pvec(arb_churn_event(), 0..5),
        strategy in arb_strategy(),
    ) {
        rt(&tamper);
        rt(&ChurnSpec::new(churn));
        rt(&strategy);
    }

    #[test]
    fn bench_json_roundtrips(json in arb_json()) {
        rt(&json);
    }

    // ---- negative space: the codec never panics on hostile bytes ----

    #[test]
    fn arbitrary_bytes_never_panic_decoders(bytes in pvec(any::<u8>(), 0..96)) {
        // Any result is fine; reaching the assertion means no panic and
        // no over-read (the Reader is bounds-checked by construction).
        let _ = decode_from_slice::<NodeMsg>(&bytes);
        let _ = decode_from_slice::<DiscoveryMsg>(&bytes);
        let _ = decode_from_slice::<CommitteeMsg>(&bytes);
        let _ = decode_from_slice::<StrategySpec>(&bytes);
        let _ = decode_from_slice::<PeerAddr>(&bytes);
        let _ = unframe(&bytes);
        prop_assert!(true);
    }

    #[test]
    fn every_strict_prefix_is_rejected(msg in arb_node_msg()) {
        let bytes = encode_to_vec(&msg);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_from_slice::<NodeMsg>(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn frame_envelope_is_transparent(payload in pvec(any::<u8>(), 0..256)) {
        let framed = frame(&payload);
        prop_assert_eq!(&framed[..4], &FRAME_MAGIC[..]);
        prop_assert_eq!(framed[4], WIRE_VERSION);
        prop_assert_eq!(framed.len(), HEADER_LEN + payload.len());
        prop_assert_eq!(unframe(&framed).expect("valid frame"), &payload[..]);
    }
}

// ---- corrupt / truncated / oversized frames -------------------------------

/// A realistic signed committee message, as it would travel in production.
fn sample_msg() -> NodeMsg {
    let mut registry = KeyRegistry::new();
    let key = registry.register(3);
    NodeMsg::Committee(CommitteeMsg::prepare(&key, 2, digest(b"proposal")))
}

#[test]
fn flipped_magic_is_rejected() {
    let mut framed = frame(&encode_to_vec(&sample_msg()));
    framed[0] ^= 0x01;
    assert_eq!(unframe(&framed), Err(WireError::BadMagic));
}

#[test]
fn unknown_versions_are_rejected() {
    for version in [0u8, 2, 99, 255] {
        let mut framed = frame(&encode_to_vec(&sample_msg()));
        framed[4] = version;
        assert_eq!(unframe(&framed), Err(WireError::BadVersion(version)));
    }
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    let mut framed = frame(b"tiny");
    framed[5..9].copy_from_slice(&u32::MAX.to_be_bytes());
    assert_eq!(
        unframe(&framed),
        Err(WireError::Oversized {
            len: u64::from(u32::MAX),
            max: MAX_FRAME_PAYLOAD as u64,
        })
    );
}

#[test]
fn every_frame_truncation_is_rejected() {
    let framed = frame(&encode_to_vec(&sample_msg()));
    for cut in 0..framed.len() {
        assert!(
            matches!(
                unframe(&framed[..cut]),
                Err(WireError::Truncated { .. }) | Err(WireError::BadMagic)
            ),
            "cut at {cut}/{} must be rejected",
            framed.len()
        );
    }
}

#[test]
fn trailing_bytes_after_frame_are_rejected() {
    let mut framed = frame(&encode_to_vec(&sample_msg()));
    framed.push(0xAA);
    assert_eq!(unframe(&framed), Err(WireError::Trailing(1)));
}

#[test]
fn stream_reader_yields_frames_then_clean_eof() {
    let first = encode_to_vec(&sample_msg());
    let second = encode_to_vec(&NodeMsg::GetDecidedVal);
    let mut stream = Vec::new();
    write_frame(&mut stream, &first).expect("write first");
    write_frame(&mut stream, &second).expect("write second");

    let mut cursor = std::io::Cursor::new(stream.clone());
    assert_eq!(read_frame(&mut cursor).expect("first frame"), Some(first));
    assert_eq!(read_frame(&mut cursor).expect("second frame"), Some(second));
    assert_eq!(read_frame(&mut cursor).expect("clean EOF"), None);

    // EOF mid-frame is a truncation error, not a clean end.
    let mut torn = std::io::Cursor::new(stream[..stream.len() - 3].to_vec());
    let _ = read_frame(&mut torn).expect("first frame again");
    assert!(matches!(
        read_frame(&mut torn),
        Err(FrameIoError::Wire(WireError::Truncated { .. }))
    ));
}

#[test]
fn signed_roundtrip_still_verifies_after_the_wire() {
    // Byte-identical re-encoding is what keeps signatures valid across
    // hops: a prepare vote survives encode → frame → unframe → decode and
    // still verifies against the committee.
    let mut registry = KeyRegistry::new();
    let key = registry.register(3);
    let d = digest(b"proposal");
    let msg = CommitteeMsg::prepare(&key, 2, d);
    let bytes = frame(&encode_to_vec(&msg));
    let back: CommitteeMsg = decode_from_slice(unframe(&bytes).expect("frame")).expect("decode");
    assert_eq!(back, msg);
    let committee =
        bft_cupft::committee::Committee::new(bft_cupft::graph::process_set([1, 2, 3, 4]), 1);
    assert!(back.verify(&registry, &committee));
}
