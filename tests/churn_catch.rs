//! The end-to-end catch the churn layer exists for:
//!
//! 1. a churn schedule is injected with the test-only `broken_recovery`
//!    flag set, so the crash-rejoin path restores a *fresh* discovery
//!    state instead of the snapshot — the recovered node silently loses
//!    its pre-crash knowledge;
//! 2. the churn-armed checker flags the **RecoveryConsistency** violation
//!    from the recorded trace's knowledge samples (crash view vs.
//!    recovery view), not from re-inspecting actors;
//! 3. [`shrink_churn`] reduces the failing schedule — crash event plus
//!    decoy join and leave — to the minimal single-event reproducer, all
//!    deterministic under the fixed seed;
//! 4. the control run (same schedule, honest recovery) passes every
//!    weakened invariant, so the flag is what the checker catches.

use bft_cupft::adversary::{churn_size, shrink_churn, ChurnEvent, ChurnSpec, Invariant};
use bft_cupft::core::{run_scenario_recorded, ProtocolMode, Scenario};
use bft_cupft::graph::{fig1b, process_set, ProcessId};
use bft_cupft::net::DelayPolicy;

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// The injected schedule: the real culprit (a crash-rejoin of learner 5,
/// late enough that 5 has gossiped knowledge worth losing, early enough
/// that it fires before the run's last decision) buried between two
/// decoys that perturb the run but cause no violation on their own.
fn initial_spec() -> ChurnSpec {
    ChurnSpec::new(vec![
        ChurnEvent::JoinAt {
            tick: 500,
            node: ProcessId::new(8),
            seed_peers: process_set([5, 6]),
        },
        ChurnEvent::CrashRecoverAt {
            tick: 150,
            node: ProcessId::new(5),
            down_for: 100,
        },
        ChurnEvent::LeaveAt {
            tick: 5,
            node: ProcessId::new(7),
        },
    ])
}

fn scenario_with(spec: &ChurnSpec, broken: bool) -> Scenario {
    Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
        .with_seed(7)
        .with_policy(psync())
        .with_horizon(50_000)
        .with_churn(spec.clone())
        .with_broken_recovery(broken)
}

/// The shrink oracle: does this schedule, under broken recovery, make the
/// checker flag a RecoveryConsistency violation?
fn violates_recovery(spec: &ChurnSpec) -> bool {
    let scenario = scenario_with(spec, true);
    let (outcome, trace) = run_scenario_recorded(&scenario);
    scenario
        .churn_trace_checker(&outcome)
        .check(&trace)
        .iter()
        .any(|v| v.invariant == Invariant::RecoveryConsistency)
}

#[test]
fn inject_flag_shrink_churn_end_to_end() {
    let initial = initial_spec();

    // 1+2: the recorded trace exhibits the knowledge regression and the
    // checker flags exactly RecoveryConsistency — lost knowledge is a
    // liveness wound, not a safety one, so consensus still solves and
    // agreement holds.
    let scenario = scenario_with(&initial, true);
    let (outcome, trace) = run_scenario_recorded(&scenario);
    assert!(
        outcome.check().consensus_solved(),
        "broken recovery costs knowledge, not safety: {outcome:?}"
    );
    let violations = scenario.churn_trace_checker(&outcome).check(&trace);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == Invariant::RecoveryConsistency),
        "checker must flag RecoveryConsistency from the trace: {violations:?}"
    );
    assert!(
        violations
            .iter()
            .all(|v| v.invariant != Invariant::ChurnAgreement),
        "no agreement violation: {violations:?}"
    );

    // 3: the shrinker strips both decoys and keeps the crash-rejoin —
    // the minimal reproducer is the single culprit event, unsimplified.
    let shrunk = shrink_churn(initial.clone(), &mut violates_recovery);
    assert!(shrunk.shrank(), "decoys must be removable");
    assert!(churn_size(&shrunk.minimal) < churn_size(&initial));
    assert_eq!(
        shrunk.minimal,
        ChurnSpec::new(vec![ChurnEvent::CrashRecoverAt {
            tick: 150,
            node: ProcessId::new(5),
            down_for: 100,
        }]),
        "minimal reproducer is the bare crash-rejoin"
    );
    assert!(violates_recovery(&shrunk.minimal));

    // determinism: the whole record→check→shrink loop replays identically
    let replay = shrink_churn(initial, &mut violates_recovery);
    assert_eq!(replay, shrunk);
    let (_, trace_b) = run_scenario_recorded(&scenario);
    assert_eq!(trace.fingerprint(), trace_b.fingerprint());
    assert_eq!(trace, trace_b);
}

#[test]
fn honest_recovery_is_the_control() {
    // Same schedule, honest recovery: every weakened invariant passes,
    // so the broken_recovery flag is precisely what the checker catches.
    let scenario = scenario_with(&initial_spec(), false);
    let (outcome, trace) = run_scenario_recorded(&scenario);
    assert!(outcome.check().consensus_solved());
    let violations = scenario.churn_trace_checker(&outcome).check(&trace);
    assert!(
        violations.is_empty(),
        "control must be clean: {violations:?}"
    );
}
