//! The churn axis acceptance sweep: join / leave / crash-rejoin schedules
//! on all five graph families, on both runtimes, with the weakened churn
//! invariants (churn-agreement, join-convergence, recovery-consistency)
//! checked from recorded traces.
//!
//! Three claims:
//!
//! 1. **Family sweep** — every family solves consensus under a schedule
//!    that joins one periphery vertex late, crash-recovers another, and
//!    departs a third, and the churn-armed [`TraceChecker`] finds no
//!    violation (the recovery events demonstrably fire: the outcome
//!    carries crash and recovery knowledge samples).
//! 2. **Substrate parity** — the same schedules on the threaded runtime
//!    reach the simulator's decided value (churn executes at the actor
//!    level, so both substrates honor a spec identically by construction).
//! 3. **Determinism at scale** — a seeded join + crash-rejoin schedule on
//!    k-diamond at n ≥ 100 produces byte-identical decisions *and*
//!    [`ObsReport`]s across two same-seed observed sim runs.
//!
//! `scripts/verify.sh --quick` fronts this test as the churn gate.

use bft_cupft::adversary::{ChurnEvent, ChurnSpec};
use bft_cupft::core::{
    run_scenario_recorded, NodeStatus, ProtocolMode, RuntimeKind, Scenario, ScenarioOutcome,
};
use bft_cupft::graph::{process_set, GraphFamily, ProcessId};
use bft_cupft::net::DelayPolicy;
use bft_cupft::obs::ObsReport;
use cupft_bench::obs_json;

fn psync() -> DelayPolicy {
    DelayPolicy::PartialSynchrony {
        gst: 200,
        delta: 10,
        pre_gst_max: 120,
    }
}

/// All five topology families (the four family-sweep parameterizations
/// plus scale-free, which the end-to-end bench already solves at n=100).
fn five_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::erdos_renyi(16, 1),
        GraphFamily::RingOfCliques {
            cliques: 3,
            clique_size: 4,
            bridges: 3,
            fault_threshold: 1,
        },
        GraphFamily::k_diamond(16, 1),
        GraphFamily::scale_free(16, 1),
        GraphFamily::BridgedPartition {
            a_size: 8,
            sink_size: 3,
            bridge_width: 3,
            fault_threshold: 1,
        },
    ]
}

/// The three churned vertices of a family sample, as
/// `(joiner, recoverer, leaver)`: the highest non-sink IDs (periphery
/// under the families' core-first layout) when the sample has any, the
/// highest IDs outright when strong connectivity qualified the *whole*
/// graph as sink (dense Erdős–Rényi, ring-of-cliques).
fn churn_victims(sample: &bft_cupft::graph::FamilySample) -> (u64, u64, u64) {
    let mut candidates: Vec<u64> = sample
        .system
        .graph
        .vertices()
        .filter(|v| !sample.system.sink.contains(v))
        .map(|v| v.raw())
        .collect();
    if candidates.len() < 3 {
        candidates = sample.system.graph.vertices().map(|v| v.raw()).collect();
    }
    candidates.sort_unstable();
    assert!(candidates.len() >= 3, "need ≥3 vertices to churn");
    let leaver = candidates.pop().unwrap();
    let recoverer = candidates.pop().unwrap();
    let joiner = candidates.pop().unwrap();
    (joiner, recoverer, leaver)
}

/// The sweep schedule: crash early enough that it always fires (the run
/// must at least outlive the join tick), join mid-discovery, depart
/// immediately — but only when the departure is structurally survivable.
///
/// The early leave needs an expendable vertex: a sink-member leaver would
/// stack a second permanent silence on top of the crash-recoverer (who
/// rejoins passively, never resuming its replica seat) and blow the
/// `f = 1` committee budget; scale-free does not promise one-vertex
/// resilience even on its periphery. In those cases the leave is
/// scheduled far past any plausible decision time and stays inert.
fn sweep_schedule(sample: &bft_cupft::graph::FamilySample) -> ChurnSpec {
    let (joiner, recoverer, leaver) = churn_victims(sample);
    let scale_free = matches!(sample.family, GraphFamily::ScaleFree { .. });
    let leave_early = !scale_free && !sample.system.sink.contains(&ProcessId::new(leaver));
    ChurnSpec::new(vec![
        ChurnEvent::LeaveAt {
            tick: if leave_early { 5 } else { 300_000 },
            node: ProcessId::new(leaver),
        },
        ChurnEvent::CrashRecoverAt {
            tick: 150,
            node: ProcessId::new(recoverer),
            down_for: 300,
        },
        ChurnEvent::JoinAt {
            tick: 250,
            node: ProcessId::new(joiner),
            seed_peers: process_set([1]),
        },
    ])
}

fn sweep_scenario(family: &GraphFamily, size: usize) -> (Scenario, ChurnSpec) {
    let scaled = family.scaled(size);
    let sample = scaled
        .generate(11)
        .unwrap_or_else(|e| panic!("{}: {e}", scaled.label()));
    let spec = sweep_schedule(&sample);
    let scenario = Scenario::new(sample.system.graph, ProtocolMode::KnownThreshold(1))
        .with_seed(7)
        .with_policy(psync())
        .with_horizon(400_000)
        .with_churn(spec.clone());
    (scenario, spec)
}

fn assert_churn_cell_green(
    family: &GraphFamily,
    scenario: &Scenario,
    spec: &ChurnSpec,
    outcome: &ScenarioOutcome,
) {
    let name = family.name();
    assert!(
        outcome.check().consensus_solved(),
        "{name}: churn cell must solve consensus: {outcome:?}"
    );
    let recoverer = *spec.recoverers().iter().next().expect("one recoverer");
    assert!(
        outcome.crash_views.contains_key(&recoverer),
        "{name}: the crash must actually fire"
    );
    assert!(
        outcome.recovery_views.contains_key(&recoverer),
        "{name}: the recovery must actually fire"
    );
    let joiner = *spec.joiners().iter().next().expect("one joiner");
    assert_eq!(
        outcome.statuses[&joiner],
        NodeStatus::Decided,
        "{name}: the late joiner must still decide"
    );
    let leaver = *spec.leavers().iter().next().expect("one leaver");
    let leaver_scheduled_early = spec.leave_of(leaver).unwrap() < 1_000;
    if leaver_scheduled_early {
        assert_eq!(
            outcome.statuses[&leaver],
            NodeStatus::Departed,
            "{name}: an immediate leaver departs before deciding"
        );
        assert!(
            outcome.decisions[&leaver].is_none(),
            "{name}: a departed process has no decision"
        );
    }
    let _ = scenario;
}

#[test]
fn five_families_churn_solves_and_passes_weakened_invariants() {
    for family in five_families() {
        let (scenario, spec) = sweep_scenario(&family, 12);
        let (outcome, trace) = run_scenario_recorded(&scenario);
        assert_churn_cell_green(&family, &scenario, &spec, &outcome);
        // All three weakened invariants, judged from the recorded trace's
        // knowledge samples.
        let violations = scenario.churn_trace_checker(&outcome).check(&trace);
        assert!(
            violations.is_empty(),
            "{}: churn invariants must hold: {violations:?}",
            family.name()
        );
        // The trace carries knowledge samples for every correct process
        // plus the crash/recovery pair.
        assert!(trace.knowledge().count() >= outcome.final_views.len() + 2);
    }
}

#[test]
fn five_families_churn_matches_sim_decisions_on_threads() {
    for family in five_families() {
        let (scenario, spec) = sweep_scenario(&family, 10);
        let sim = run_scenario_recorded(&scenario).0;
        assert_churn_cell_green(&family, &scenario, &spec, &sim);
        let sim_value: Vec<u8> = sim
            .check()
            .decided_values
            .into_iter()
            .next()
            .expect("sim cell decided");

        // Tick knobs read as milliseconds on the threaded substrate (same
        // retuning as tests/family_sweep.rs); the churn schedule reads the
        // same way, so crash (150 ms) < join (250 ms) < recovery (450 ms)
        // keeps its shape.
        let mut threaded = scenario.clone();
        threaded.discovery_period = 200;
        threaded.view_timeout_base = 4_000;
        let outcome = threaded.run_on(RuntimeKind::Threaded);
        assert!(
            outcome.check().consensus_solved(),
            "{}: threaded churn cell must solve: {outcome:?}",
            family.name()
        );
        for (id, decision) in &outcome.decisions {
            if let Some(value) = decision {
                assert_eq!(
                    value,
                    &sim_value,
                    "{}: threaded decider {id} must reach the sim's value",
                    family.name()
                );
            }
        }
    }
}

/// The PR's acceptance criterion: a seeded churn scenario (join +
/// crash-rejoin) on k-diamond at n ≥ 100 produces byte-identical
/// decisions and [`ObsReport`]s across two same-seed observed sim runs.
#[test]
fn churn_at_scale_is_byte_deterministic() {
    let scaled = GraphFamily::k_diamond(100, 1);
    let sample = scaled.generate(100).expect("valid parameterization");
    assert!(sample.system.graph.vertex_count() >= 100);
    let (joiner, recoverer, _) = churn_victims(&sample);
    let scenario = Scenario::new(sample.system.graph, ProtocolMode::KnownThreshold(1))
        .with_seed(9)
        .with_policy(psync())
        .with_horizon(2_000_000)
        .with_observe(true)
        .with_churn(ChurnSpec::new(vec![
            ChurnEvent::JoinAt {
                tick: 400,
                node: ProcessId::new(joiner),
                seed_peers: process_set([1]),
            },
            ChurnEvent::CrashRecoverAt {
                tick: 200,
                node: ProcessId::new(recoverer),
                down_for: 400,
            },
        ]));

    let observed = |scenario: &Scenario| -> (ScenarioOutcome, ObsReport) {
        let mut outcome = scenario.run_on(RuntimeKind::Sim);
        let obs = outcome.obs.take().expect("observed run carries a report");
        (outcome, obs)
    };
    let (outcome_a, obs_a) = observed(&scenario);
    let (outcome_b, obs_b) = observed(&scenario);
    assert!(
        outcome_a.check().consensus_solved(),
        "churn-at-scale cell must solve"
    );
    assert_eq!(outcome_a.decisions, outcome_b.decisions);
    assert_eq!(outcome_a.statuses, outcome_b.statuses);
    assert_eq!(outcome_a.crash_views, outcome_b.crash_views);
    assert_eq!(outcome_a.recovery_views, outcome_b.recovery_views);
    assert_eq!(outcome_a.end_time, outcome_b.end_time);
    assert_eq!(obs_a, obs_b, "same seed + schedule → equal ObsReports");
    assert_eq!(
        obs_json(&obs_a).to_string(),
        obs_json(&obs_b).to_string(),
        "obs JSON must be byte-identical"
    );
    // The churn events are visible in the report's event ring / counters.
    assert_eq!(obs_a.counter("churn_joins"), 1);
    assert_eq!(obs_a.counter("churn_crashes"), 1);
    assert_eq!(obs_a.counter("churn_recoveries"), 1);
    // The crash + recovery really happened on both runs.
    assert!(outcome_a
        .crash_views
        .contains_key(&ProcessId::new(recoverer)));
    assert!(outcome_a
        .recovery_views
        .contains_key(&ProcessId::new(recoverer)));
}
