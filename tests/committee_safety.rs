//! Committee-consensus safety under adversarial delivery: value locking
//! across view changes and agreement under arbitrary message orderings.

use bft_cupft::committee::{Committee, CommitteeMsg, Replica, ReplicaConfig, Value};
use bft_cupft::crypto::KeyRegistry;
use bft_cupft::graph::{process_set, ProcessId};
use proptest::prelude::*;

fn make_replicas(n: u64, f: usize) -> Vec<Replica> {
    let mut registry = KeyRegistry::new();
    let committee = Committee::new(process_set(1..=n), f);
    (1..=n)
        .map(|i| {
            let key = registry.register(i);
            Replica::new(
                key,
                registry.clone(),
                committee.clone(),
                Value::from(format!("value-{i}").into_bytes()),
                ReplicaConfig::default(),
            )
        })
        .collect()
}

/// Drives replicas with a queue whose pop position is chosen by `picks`
/// (an arbitrary delivery order), dropping messages from `silent`.
/// Replicas whose IDs are in `laggard` get their timeouts fired whenever
/// the queue drains without universal decision.
fn run_with_order(replicas: &mut [Replica], silent: &[u64], picks: &[u8]) -> Vec<Option<Value>> {
    let mut queue: Vec<(ProcessId, ProcessId, CommitteeMsg)> = Vec::new();
    for r in replicas.iter_mut() {
        let fx = r.start();
        for (to, m) in fx.msgs {
            queue.push((r.id(), to, m));
        }
    }
    let mut pick_idx = 0usize;
    let mut steps = 0u32;
    loop {
        while !queue.is_empty() {
            steps += 1;
            assert!(steps < 300_000, "did not converge");
            let pos = if picks.is_empty() {
                queue.len() - 1
            } else {
                let p = picks[pick_idx % picks.len()] as usize;
                pick_idx += 1;
                p % queue.len()
            };
            let (from, to, msg) = queue.swap_remove(pos);
            if silent.contains(&from.raw()) {
                continue;
            }
            let Some(r) = replicas.iter_mut().find(|r| r.id() == to) else {
                continue;
            };
            let fx = r.handle(from, msg);
            for (to2, m2) in fx.msgs {
                queue.push((r.id(), to2, m2));
            }
        }
        // Queue drained: if correct replicas are undecided, fire timeouts.
        let undecided = replicas
            .iter()
            .filter(|r| !silent.contains(&r.id().raw()) && r.decision().is_none())
            .count();
        if undecided == 0 {
            break;
        }
        let mut progressed = false;
        for r in replicas.iter_mut() {
            if silent.contains(&r.id().raw()) || r.decision().is_some() {
                continue;
            }
            let fx = r.on_timeout(r.view());
            for (to, m) in fx.msgs {
                queue.push((r.id(), to, m));
                progressed = true;
            }
        }
        assert!(
            progressed,
            "stuck with {undecided} undecided and no timeouts"
        );
    }
    replicas.iter().map(|r| r.decision().cloned()).collect()
}

/// Value locking: once a quorum may have decided in view 0, later views
/// must propose the same value. We force the scenario: leader 1 completes
/// view 0 at replicas {1,2,3}; replica 4 sees nothing, times out, and
/// drives view changes — the final decisions must all match.
#[test]
fn view_change_cannot_revert_possible_decision() {
    let mut replicas = make_replicas(4, 1);
    // Phase 1: run view 0 fully among {1,2,3} only (messages to/from 4
    // withheld): quorum q=3 is reachable, so they may decide.
    let mut queue: Vec<(ProcessId, ProcessId, CommitteeMsg)> = Vec::new();
    for r in replicas.iter_mut() {
        let fx = r.start();
        for (to, m) in fx.msgs {
            if to.raw() != 4 {
                queue.push((r.id(), to, m));
            }
        }
    }
    let mut steps = 0;
    while let Some((from, to, msg)) = queue.pop() {
        steps += 1;
        assert!(steps < 100_000);
        if from.raw() == 4 || to.raw() == 4 {
            continue;
        }
        let Some(r) = replicas.iter_mut().find(|r| r.id() == to) else {
            continue;
        };
        let fx = r.handle(from, msg);
        for (to2, m2) in fx.msgs {
            if to2.raw() != 4 {
                queue.push((r.id(), to2, m2));
            }
        }
    }
    let decided_v0: Vec<Value> = replicas
        .iter()
        .filter_map(|r| r.decision().cloned())
        .collect();
    assert!(
        !decided_v0.is_empty(),
        "view 0 should decide among {{1,2,3}}"
    );
    assert!(decided_v0.iter().all(|v| v.as_ref() == b"value-1"));

    // Phase 2: replica 4 timed out and forces a view change; remaining
    // undecided replicas participate. Whatever happens, nobody may decide
    // anything but value-1.
    let mut queue: Vec<(ProcessId, ProcessId, CommitteeMsg)> = Vec::new();
    for r in replicas.iter_mut() {
        if r.decision().is_none() {
            let fx = r.on_timeout(r.view());
            for (to, m) in fx.msgs {
                queue.push((r.id(), to, m));
            }
        }
    }
    let mut steps = 0;
    while let Some((from, to, msg)) = queue.pop() {
        steps += 1;
        assert!(steps < 100_000);
        let Some(r) = replicas.iter_mut().find(|r| r.id() == to) else {
            continue;
        };
        let fx = r.handle(from, msg);
        for (to2, m2) in fx.msgs {
            queue.push((r.id(), to2, m2));
        }
    }
    for r in &replicas {
        if let Some(v) = r.decision() {
            assert_eq!(
                v.as_ref(),
                b"value-1",
                "replica {} reverted a possibly-decided value",
                r.id()
            );
        }
    }
}

/// A Byzantine member flooding stale prepares for a bogus digest must not
/// trick anyone into committing it.
#[test]
fn bogus_prepare_flood_is_harmless() {
    let mut replicas = make_replicas(4, 1);
    let mut registry = KeyRegistry::new();
    let byz_key = registry.register(4);
    // the digest of a value nobody pre-prepared
    let bogus = bft_cupft::crypto::sha256::digest(b"bogus");
    let mut queue: Vec<(ProcessId, ProcessId, CommitteeMsg)> = Vec::new();
    for target in 1..=3u64 {
        for _ in 0..10 {
            queue.push((
                ProcessId::new(4),
                ProcessId::new(target),
                CommitteeMsg::prepare(&byz_key, 0, bogus),
            ));
            queue.push((
                ProcessId::new(4),
                ProcessId::new(target),
                CommitteeMsg::commit(&byz_key, 0, bogus),
            ));
        }
    }
    for r in replicas.iter_mut() {
        let fx = r.start();
        for (to, m) in fx.msgs {
            queue.push((r.id(), to, m));
        }
    }
    let mut steps = 0;
    while let Some((from, to, msg)) = queue.pop() {
        steps += 1;
        assert!(steps < 100_000);
        let Some(r) = replicas.iter_mut().find(|r| r.id() == to) else {
            continue;
        };
        let fx = r.handle(from, msg);
        for (to2, m2) in fx.msgs {
            queue.push((r.id(), to2, m2));
        }
    }
    for r in replicas.iter().take(3) {
        assert_eq!(
            r.decision().map(|v| v.as_ref()),
            Some(&b"value-1"[..]),
            "replica {}",
            r.id()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Agreement + validity hold under ANY delivery order with any single
    /// silent member (n=4, f=1).
    #[test]
    fn agreement_under_arbitrary_orderings(
        picks in proptest::collection::vec(any::<u8>(), 1..200),
        silent in 0u64..5,
    ) {
        let mut replicas = make_replicas(4, 1);
        let silent_list: Vec<u64> = if silent == 0 { vec![] } else { vec![silent] };
        let decisions = run_with_order(&mut replicas, &silent_list, &picks);
        let values: std::collections::BTreeSet<Vec<u8>> = decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| !silent_list.contains(&((i + 1) as u64)))
            .filter_map(|(_, d)| d.as_ref().map(|v| v.to_vec()))
            .collect();
        prop_assert!(values.len() <= 1, "agreement violated: {values:?}");
        for v in &values {
            prop_assert!(v.starts_with(b"value-"), "validity violated");
        }
    }

    /// Same property at n=7, f=2 with up to two silent members.
    #[test]
    fn agreement_under_orderings_f2(
        picks in proptest::collection::vec(any::<u8>(), 1..150),
        s1 in 0u64..8,
        s2 in 0u64..8,
    ) {
        let mut replicas = make_replicas(7, 2);
        let mut silent: Vec<u64> = [s1, s2]
            .into_iter()
            .filter(|&s| (1..=7).contains(&s))
            .collect();
        silent.dedup();
        let decisions = run_with_order(&mut replicas, &silent, &picks);
        let values: std::collections::BTreeSet<Vec<u8>> = decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| !silent.contains(&((i + 1) as u64)))
            .filter_map(|(_, d)| d.as_ref().map(|v| v.to_vec()))
            .collect();
        prop_assert!(values.len() <= 1, "agreement violated: {values:?}");
    }
}
