//! Property-based tests over the protocol stacks: consensus properties
//! under randomized seeds, fault placements, and delay parameters.

use bft_cupft::core::{run_scenario, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::crypto::{KeyRegistry, SignedPd};
use bft_cupft::graph::{fig1b, fig4b, process_set, GdiParams, Generator, ProcessId};
use bft_cupft::net::DelayPolicy;
use proptest::prelude::*;

fn arb_strategy() -> impl Strategy<Value = ByzantineStrategy> {
    prop_oneof![
        Just(ByzantineStrategy::Silent),
        proptest::collection::btree_set(1u64..9, 0..4).prop_map(|s| ByzantineStrategy::FakePd {
            claimed: s.into_iter().map(ProcessId::new).collect(),
        }),
        (
            proptest::collection::btree_set(1u64..9, 0..3),
            proptest::collection::btree_set(1u64..9, 0..3)
        )
            .prop_map(|(a, b)| ByzantineStrategy::EquivocatePd {
                even: a.into_iter().map(ProcessId::new).collect(),
                odd: b.into_iter().map(ProcessId::new).collect(),
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BFT-CUP on Fig. 1b: consensus holds for every Byzantine strategy,
    /// seed, and (reasonable) GST placement.
    #[test]
    fn bft_cup_consensus_properties(
        seed in 0u64..1000,
        gst in 50u64..500,
        strategy in arb_strategy(),
    ) {
        let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, strategy)
            .with_policy(DelayPolicy::PartialSynchrony {
                gst,
                delta: 10,
                pre_gst_max: gst.max(20),
            })
            .with_seed(seed)
            .with_horizon(500_000);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        prop_assert!(check.consensus_solved(), "{check:?}");
    }

    /// BFT-CUPFT on Fig. 4b: same sweep, fault threshold withheld.
    #[test]
    fn bft_cupft_consensus_properties(
        seed in 0u64..1000,
        gst in 50u64..400,
        strategy in arb_strategy(),
    ) {
        let scenario = Scenario::new(fig4b().graph().clone(), ProtocolMode::UnknownThreshold)
            .with_byzantine(4, strategy)
            .with_policy(DelayPolicy::PartialSynchrony {
                gst,
                delta: 10,
                pre_gst_max: gst.max(20),
            })
            .with_seed(seed)
            .with_horizon(500_000);
        let outcome = run_scenario(&scenario);
        let check = outcome.check();
        prop_assert!(check.consensus_solved(), "{check:?}");
        prop_assert_eq!(outcome.distinct_detections().len(), 1);
    }

    /// Generated systems: BFT-CUP with a silent Byzantine across the
    /// parameter space.
    #[test]
    fn bft_cup_on_generated_systems(gen_seed in 0u64..50, run_seed in 0u64..50) {
        let sys = Generator::from_seed(gen_seed)
            .generate(&GdiParams::new(1))
            .unwrap();
        let byz = *sys.byzantine.iter().next().unwrap();
        let scenario = Scenario::new(sys.graph.clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(byz.raw(), ByzantineStrategy::Silent)
            .with_seed(run_seed);
        let outcome = run_scenario(&scenario);
        prop_assert!(outcome.check().consensus_solved());
        prop_assert_eq!(
            outcome.distinct_detections(),
            [sys.expected_detection()].into_iter().collect()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Crypto: signing round-trips, tampering is always caught.
    #[test]
    fn signed_pd_tamper_evidence(
        author in 1u64..1000,
        pd in proptest::collection::vec(1u64..1000, 0..20),
        tamper in proptest::collection::vec(1u64..1000, 1..20),
    ) {
        let mut registry = KeyRegistry::new();
        let key = registry.register(author);
        let record = SignedPd::sign(&key, pd.clone());
        prop_assert!(record.verify(&registry));
        // Any record with different contents must be a forgery.
        let mut sorted = pd.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut tampered_pd = sorted.clone();
        tampered_pd.extend(tamper);
        tampered_pd.sort_unstable();
        tampered_pd.dedup();
        if tampered_pd != sorted {
            let forged = SignedPd::forge(author, tampered_pd);
            prop_assert!(!forged.verify(&registry));
        }
    }

    /// Crypto: a signature never verifies under another ID.
    #[test]
    fn signatures_not_transferable(a in 1u64..500, b in 501u64..1000, msg in any::<Vec<u8>>()) {
        let mut registry = KeyRegistry::new();
        let key_a = registry.register(a);
        registry.register(b);
        let sig = key_a.sign(&msg);
        prop_assert!(registry.verify(a, &msg, &sig));
        prop_assert!(!registry.verify(b, &msg, &sig));
    }

    /// The sink quorum intersection property holds for every legal
    /// committee shape: 2q − |S| ≥ f + 1.
    #[test]
    fn quorum_intersection_all_shapes(f in 0usize..6, extra in 0usize..6) {
        let n = 2 * f + 1 + extra.min(f);
        let committee = bft_cupft::committee::Committee::new(
            process_set(1..=(n as u64)),
            f,
        );
        let q = committee.quorum_size();
        prop_assert!(2 * q > n + f);
        prop_assert!(q <= n, "quorum must be formable");
        prop_assert!(committee.learning_threshold() > f);
    }
}
