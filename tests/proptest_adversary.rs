//! Property tests for the fault-injection engine's determinism contract:
//! record → replay on the simulator is byte-identical for equal seeds,
//! and shrinking preserves the violated invariant.

use bft_cupft::adversary::{shrink, Assignment, Invariant};
use bft_cupft::core::{run_scenario_recorded, ByzantineStrategy, ProtocolMode, Scenario};
use bft_cupft::graph::{fig1a, fig1b, process_set, ProcessId};
use proptest::prelude::*;

/// Leaf and combinator specs over the fig1b neighborhood of process 4.
fn arb_spec() -> impl Strategy<Value = ByzantineStrategy> {
    let leaf = prop_oneof![
        Just(ByzantineStrategy::Silent),
        Just(ByzantineStrategy::FakePd {
            claimed: process_set([1, 2, 3]),
        }),
        Just(ByzantineStrategy::ForgeUnsignedPd {
            victim: ProcessId::new(1),
            claimed: process_set([4]),
        }),
        Just(ByzantineStrategy::EquivocatePd {
            even: process_set([1, 2]),
            odd: process_set([2, 3]),
        }),
    ];
    (leaf, 0u8..4, 50u64..500).prop_map(|(inner, combinator, at)| match combinator {
        0 => inner,
        1 => ByzantineStrategy::DelayRelease {
            until: at,
            inner: Box::new(inner),
        },
        2 => ByzantineStrategy::TargetSubset {
            targets: process_set([1, 2]),
            inner: Box::new(inner),
        },
        _ => ByzantineStrategy::FlipAfter {
            at,
            before: Box::new(inner),
            after: Box::new(ByzantineStrategy::Silent),
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Recording the same (scenario, seed, strategy) triple twice yields
    /// byte-identical traces — the replay path underpinning the invariant
    /// checker and the shrinker.
    #[test]
    fn record_replay_is_byte_identical(
        seed in 0u64..1000,
        spec in arb_spec(),
    ) {
        let scenario = Scenario::new(fig1b().graph().clone(), ProtocolMode::KnownThreshold(1))
            .with_byzantine(4, spec)
            .with_seed(seed)
            .with_horizon(500_000);
        let (outcome_a, trace_a) = run_scenario_recorded(&scenario);
        let (outcome_b, trace_b) = run_scenario_recorded(&scenario);
        prop_assert_eq!(trace_a.fingerprint(), trace_b.fingerprint());
        prop_assert_eq!(&trace_a, &trace_b);
        prop_assert_eq!(outcome_a.decisions, outcome_b.decisions);
        // and the sufficient graph solved consensus under the spec
        prop_assert!(outcome_a.check().consensus_solved());
    }

    /// Whatever composite the search starts from, the shrinker's output
    /// still violates the same invariant (Agreement on Fig. 1a) and never
    /// grows.
    #[test]
    fn shrinking_preserves_the_violation(
        seed in 0u64..100,
        until in 50u64..400,
    ) {
        let initial: Assignment = vec![(ProcessId::new(4), ByzantineStrategy::DelayRelease {
            until,
            inner: Box::new(ByzantineStrategy::TargetSubset {
                targets: process_set([]),
                inner: Box::new(ByzantineStrategy::Silent),
            }),
        })];
        // Constrained to keep process 4 faulty (Fig. 1a fails even with no
        // faults, so the unconstrained minimum is the empty assignment —
        // see tests/adversary_catch.rs): the combinator layers must always
        // prune down to bare Silent, for every seed and release tick.
        let mut violates = |assignment: &Assignment| {
            if assignment.is_empty() {
                return false;
            }
            let mut scenario =
                Scenario::new(fig1a().graph().clone(), ProtocolMode::KnownThreshold(1))
                    .with_seed(seed)
                    .with_horizon(50_000);
            for (id, spec) in assignment {
                scenario = scenario.with_byzantine(id.raw(), spec.clone());
            }
            let (_, trace) = run_scenario_recorded(&scenario);
            scenario
                .trace_checker()
                .check(&trace)
                .iter()
                .any(|v| v.invariant == Invariant::Agreement)
        };
        let outcome = shrink(initial, &mut violates);
        prop_assert!(violates(&outcome.minimal));
        prop_assert_eq!(
            outcome.minimal,
            vec![(ProcessId::new(4), ByzantineStrategy::Silent)]
        );
    }
}
