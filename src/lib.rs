//! # bft-cupft — BFT Consensus with Unknown Participants and Fault Threshold
//!
//! Facade crate re-exporting the full reproduction of *“Knowledge
//! Connectivity Requirements for Solving BFT Consensus with Unknown
//! Participants and Fault Threshold”* (ICDCS 2024).
//!
//! See the workspace README for architecture; start from
//! [`cupft_core`] for the protocol stack and [`cupft_graph`] for the
//! knowledge-connectivity machinery.

#![forbid(unsafe_code)]

pub use cupft_adversary as adversary;
pub use cupft_committee as committee;
pub use cupft_core as core;
pub use cupft_crypto as crypto;
pub use cupft_detector as detector;
pub use cupft_discovery as discovery;
pub use cupft_graph as graph;
pub use cupft_net as net;
pub use cupft_obs as obs;
pub use cupft_rrb as rrb;
pub use cupft_wire as wire;
