//! Multi-process socket-cell driver: a real distributed deployment of the
//! protocol stack, parity-checked against the deterministic simulator.
//!
//! One invocation without `--node` is the **coordinator**: it generates
//! the requested graph-family sample, runs the deterministic simulator on
//! it for ground truth, then spawns one OS process per vertex (re-invoking
//! this same binary with `--node <id>`). Each **node process** hosts a
//! single protocol [`Node`] inside a [`SocketRuntime`], so every protocol
//! message crosses a process boundary over loopback TCP in the versioned
//! `cupft_wire` frame format.
//!
//! The control protocol is line-oriented over the children's stdio:
//!
//! ```text
//! child  -> coord   ADDR <id> <host:port>     listener bound, before GO
//! coord  -> child   PEER <id> <host:port>     one line per remote peer
//! coord  -> child   GO                        peer book complete, run
//! child  -> coord   DECIDED <id> <hex>        the node's decision
//! coord  -> child   STOP                      everyone decided, shut down
//! ```
//!
//! Children keep serving traffic after deciding (an early exit would
//! starve slower peers), so global completion is coordinated out of band:
//! the coordinator sends `STOP` only once every node has reported. On
//! success the coordinator prints `SOCKET PARITY OK …` — the line CI
//! greps for — and exits 0; any divergence from the simulator's
//! decisions, child failure, or timeout exits nonzero.
//!
//! Keys are deterministic per process ID, so the per-process
//! `SystemSetup::new(&graph)` rebuilds yield mutually verifiable HMACs
//! without any key-distribution step.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bft_cupft::committee::{ReplicaConfig, Value};
use bft_cupft::core::{Node, NodeConfig, ProtocolMode, RuntimeKind, Scenario};
use bft_cupft::detector::SystemSetup;
use bft_cupft::graph::{DiGraph, GraphFamily, ProcessId};
use bft_cupft::net::threaded::Board;
use bft_cupft::net::{PeerAddr, Runtime, SocketConfig, SocketRuntime};

/// Discovery tick period in milliseconds — wall-clock substrates read the
/// tick-denominated knobs as ms (same retuning the threaded sweeps use).
const DISCOVERY_PERIOD_MS: u64 = 100;
/// Committee view-timeout base in milliseconds: generous, so real
/// scheduling and TCP jitter cannot trigger spurious view changes.
const VIEW_TIMEOUT_MS: u64 = 4_000;

struct Args {
    family: String,
    n: usize,
    f: usize,
    graph_seed: u64,
    seed: u64,
    wall: u64,
    node: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            family: "k-diamond".into(),
            n: 16,
            f: 1,
            graph_seed: 11,
            seed: 0,
            wall: 120,
            node: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--family" => args.family = value("--family")?,
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--f" => args.f = value("--f")?.parse().map_err(|e| format!("--f: {e}"))?,
            "--graph-seed" => {
                args.graph_seed = value("--graph-seed")?
                    .parse()
                    .map_err(|e| format!("--graph-seed: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--wall" => {
                args.wall = value("--wall")?
                    .parse()
                    .map_err(|e| format!("--wall: {e}"))?
            }
            "--node" => {
                args.node = Some(
                    value("--node")?
                        .parse()
                        .map_err(|e| format!("--node: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn family_of(name: &str, n: usize, f: usize) -> Result<GraphFamily, String> {
    Ok(match name {
        "k-diamond" => GraphFamily::k_diamond(n, f),
        "erdos-renyi" => GraphFamily::erdos_renyi(n, f),
        "ring-of-cliques" => GraphFamily::ring_of_cliques(n, f),
        "scale-free" => GraphFamily::scale_free(n, f),
        "bridged-partition" => GraphFamily::bridged_partition(n, f),
        other => return Err(format!("unknown graph family {other}")),
    })
}

/// Every process derives the same graph from the same arguments — the
/// topology is part of the cell's configuration, not shipped over a wire.
fn cell_graph(args: &Args) -> Result<DiGraph, String> {
    let family = family_of(&args.family, args.n, args.f)?;
    let sample = family
        .generate(args.graph_seed)
        .map_err(|e| format!("{}: {e:?}", family.label()))?;
    Ok(sample.system.graph)
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd hex length {}", s.len()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad hex: {e}")))
        .collect()
}

// ---- node process ----

fn run_node(args: &Args, id: u64) -> Result<(), String> {
    let graph = cell_graph(args)?;
    let id = ProcessId::new(id);
    let setup = SystemSetup::new(&graph);
    let config = NodeConfig {
        mode: ProtocolMode::KnownThreshold(args.f),
        discovery_period: DISCOVERY_PERIOD_MS,
        replica: ReplicaConfig {
            timeout_base: VIEW_TIMEOUT_MS,
        },
        ..NodeConfig::default()
    };
    let value = Value::from(format!("v{}", id.raw()).into_bytes());
    let board: Board<Vec<u8>> = Board::new();
    let node = Node::from_setup(&setup, id, value, config)
        .ok_or_else(|| format!("process {id} is not a vertex of the cell graph"))?
        .with_board(board.clone());

    let stop = Arc::new(AtomicBool::new(false));
    let mut rt: SocketRuntime<bft_cupft::core::NodeMsg> = SocketRuntime::new(SocketConfig {
        wall_timeout: Duration::from_secs(args.wall),
        stop: Some(stop.clone()),
        ..SocketConfig::default()
    })
    .map_err(|e| format!("bind listener: {e}"))?;
    rt.add_actor(Box::new(node));

    println!("ADDR {} {}", id.raw(), rt.local_addr());
    io::stdout().flush().map_err(|e| e.to_string())?;

    // Peer book arrives on stdin, terminated by GO.
    loop {
        let mut line = String::new();
        if io::stdin()
            .read_line(&mut line)
            .map_err(|e| format!("stdin: {e}"))?
            == 0
        {
            return Err("stdin closed before GO".into());
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("PEER") => {
                let peer: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("malformed PEER line: {line}"))?;
                let addr: SocketAddr = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("malformed PEER line: {line}"))?;
                rt.register_peer(ProcessId::new(peer), PeerAddr::Tcp(addr));
            }
            Some("GO") => break,
            _ => return Err(format!("unexpected control line: {line}")),
        }
    }

    // After GO, stdin carries only STOP (or EOF if the coordinator died);
    // either way the run must end. The watcher takes its own stdin handle
    // — the GO loop above is done with it before this thread starts.
    {
        let stop = stop.clone();
        thread::spawn(move || {
            loop {
                let mut line = String::new();
                match io::stdin().read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) if line.trim() == "STOP" => break,
                    Ok(_) => continue,
                }
            }
            stop.store(true, Ordering::SeqCst);
        });
    }

    // The stop flag ends the run; the polled closure only reports the
    // decision (once) — the node keeps serving gossip for slower peers.
    let mut announced = false;
    rt.run_until_stopped(&mut || {
        if !announced {
            if let Some(bytes) = board.snapshot().remove(&id) {
                println!("DECIDED {} {}", id.raw(), hex(&bytes));
                let _ = io::stdout().flush();
                announced = true;
            }
        }
        false
    });
    Ok(())
}

// ---- coordinator ----

enum Event {
    Line(usize, String),
    Eof(usize),
}

struct Cell {
    children: Vec<Child>,
    ids: Vec<ProcessId>,
    events: mpsc::Receiver<Event>,
}

impl Cell {
    fn spawn(args: &Args, ids: &[ProcessId]) -> Result<Cell, String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let (tx, events) = mpsc::channel::<Event>();
        let mut children = Vec::new();
        for (slot, id) in ids.iter().enumerate() {
            let mut child = Command::new(&exe)
                .args([
                    "--family",
                    &args.family,
                    "--n",
                    &args.n.to_string(),
                    "--f",
                    &args.f.to_string(),
                    "--graph-seed",
                    &args.graph_seed.to_string(),
                    "--wall",
                    &args.wall.to_string(),
                    "--node",
                    &id.raw().to_string(),
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|e| format!("spawn node {id}: {e}"))?;
            let stdout = child.stdout.take().expect("piped stdout");
            let tx = tx.clone();
            thread::spawn(move || {
                for line in BufReader::new(stdout).lines() {
                    match line {
                        Ok(l) => {
                            if tx.send(Event::Line(slot, l)).is_err() {
                                return;
                            }
                        }
                        Err(_) => break,
                    }
                }
                let _ = tx.send(Event::Eof(slot));
            });
            children.push(child);
        }
        Ok(Cell {
            children,
            ids: ids.to_vec(),
            events,
        })
    }

    /// Sends one control line to every child's stdin.
    fn broadcast(&mut self, line: &str) {
        for child in &mut self.children {
            if let Some(stdin) = child.stdin.as_mut() {
                let _ = writeln!(stdin, "{line}");
                let _ = stdin.flush();
            }
        }
    }

    fn kill_all(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Collects one `<verb> <id> <rest>` report from every child, keyed by
    /// process ID. Fails on timeout, a child exiting early, or garbage.
    fn collect(
        &mut self,
        verb: &str,
        deadline: Instant,
    ) -> Result<BTreeMap<ProcessId, String>, String> {
        let mut got: BTreeMap<ProcessId, String> = BTreeMap::new();
        while got.len() < self.ids.len() {
            let wait = deadline.saturating_duration_since(Instant::now());
            if wait.is_zero() {
                return Err(format!(
                    "timed out waiting for {verb}: have {}/{}",
                    got.len(),
                    self.ids.len()
                ));
            }
            match self.events.recv_timeout(wait) {
                Ok(Event::Line(slot, line)) => {
                    let mut parts = line.split_whitespace();
                    if parts.next() != Some(verb) {
                        return Err(format!(
                            "node {} sent {line:?}, wanted {verb}",
                            self.ids[slot]
                        ));
                    }
                    let id: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("malformed report: {line}"))?;
                    let rest = parts.next().unwrap_or_default().to_string();
                    got.insert(ProcessId::new(id), rest);
                }
                Ok(Event::Eof(slot)) => {
                    return Err(format!("node {} exited before {verb}", self.ids[slot]));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err("all node readers gone".into());
                }
            }
        }
        Ok(got)
    }
}

fn run_coordinator(args: &Args) -> Result<(), String> {
    let graph = cell_graph(args)?;
    let ids: Vec<ProcessId> = graph.vertices().collect();
    let family = family_of(&args.family, args.n, args.f)?;

    // Ground truth: the deterministic simulator on the identical scenario.
    let scenario =
        Scenario::new(graph.clone(), ProtocolMode::KnownThreshold(args.f)).with_seed(args.seed);
    let sim = scenario.run_on(RuntimeKind::Sim);
    if !sim.check().consensus_solved() {
        return Err(format!(
            "simulator did not solve {} — not a valid parity cell: {:?}",
            family.label(),
            sim.decisions
        ));
    }

    let mut cell = Cell::spawn(args, &ids)?;
    let result = drive(args, &mut cell, &sim.decisions);
    if result.is_err() {
        cell.kill_all();
    }
    let (family_label, n) = (family.label(), ids.len());
    result?;

    // Orderly shutdown: every child saw STOP; require clean exits.
    for (child, id) in cell.children.iter_mut().zip(&cell.ids) {
        let status = child.wait().map_err(|e| format!("wait node {id}: {e}"))?;
        if !status.success() {
            return Err(format!("node {id} exited with {status}"));
        }
    }
    println!("SOCKET PARITY OK family={family_label} n={n}");
    Ok(())
}

/// The coordinator's run phase: address collection, peer-book broadcast,
/// decision collection, parity check, STOP.
fn drive(
    args: &Args,
    cell: &mut Cell,
    expected: &BTreeMap<ProcessId, Option<Vec<u8>>>,
) -> Result<(), String> {
    let addrs = cell.collect("ADDR", Instant::now() + Duration::from_secs(30))?;
    if addrs.len() != cell.ids.len() {
        return Err("address book incomplete".into());
    }
    for (slot, id) in cell.ids.clone().iter().enumerate() {
        let stdin = cell.children[slot].stdin.as_mut().expect("piped stdin");
        for (peer, addr) in &addrs {
            if peer != id {
                writeln!(stdin, "PEER {} {}", peer.raw(), addr)
                    .map_err(|e| format!("peer book to node {id}: {e}"))?;
            }
        }
        writeln!(stdin, "GO").map_err(|e| format!("GO to node {id}: {e}"))?;
        stdin.flush().map_err(|e| e.to_string())?;
    }

    let decided = cell.collect("DECIDED", Instant::now() + Duration::from_secs(args.wall))?;
    cell.broadcast("STOP");

    let mut socket_decisions: BTreeMap<ProcessId, Option<Vec<u8>>> = BTreeMap::new();
    for (id, hexval) in decided {
        socket_decisions.insert(id, Some(unhex(&hexval)?));
    }
    if &socket_decisions != expected {
        return Err(format!(
            "decision parity violated:\n  socket: {socket_decisions:?}\n  sim:    {expected:?}"
        ));
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("socket_cell: {e}");
            std::process::exit(2);
        }
    };
    let result = match args.node {
        Some(id) => run_node(&args, id),
        None => run_coordinator(&args),
    };
    if let Err(e) = result {
        eprintln!("socket_cell: {e}");
        std::process::exit(1);
    }
}
